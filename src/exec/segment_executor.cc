#include "exec/segment_executor.h"

#include <algorithm>
#include <string>

#include "common/logger.h"
#include "common/result_heap.h"
#include "common/timer.h"
#include "engine/batch_searcher.h"
#include "index/ivf_index.h"
#include "query/cost_model.h"
#include "simd/distances.h"

namespace vectordb {
namespace exec {

namespace {

constexpr const char* kDeadlineMessage = "query deadline exceeded";

/// One segment task's output: per-query partial top-k plus the counters it
/// accumulated. Tasks never touch shared state — stats and hits are merged
/// on the calling thread in fixed segment order, which is what makes the
/// fan-out deterministic across worker counts.
struct SegmentPartial {
  std::vector<HitList> lists;
  QueryStats stats;
  Status status;
};

/// Translate index/scan hits (local offsets) to global row ids.
HitList ToRowIds(const storage::Segment& segment, const HitList& offsets) {
  HitList out;
  out.reserve(offsets.size());
  for (const SearchHit& hit : offsets) {
    out.push_back(
        {segment.row_id_at(static_cast<size_t>(hit.id)), hit.score});
  }
  return out;
}

/// Flat/batch scan of one segment: the cache-aware blocked searcher in
/// single-threaded mode (parallelism lives at the segment level; nesting
/// pools would oversubscribe and break determinism).
Status FlatScan(const SegmentView& view, const VectorSearchPlan& plan,
                SegmentPartial* out) {
  bool loaded_now = false;
  auto data = view.AcquireData(&loaded_now);
  if (!data.ok()) return data.status();
  if (loaded_now) ++out->stats.data_tier_loads;
  engine::BatchSearchSpec spec;
  spec.metric = plan.metric;
  spec.dim = plan.dim;
  spec.k = plan.k;
  spec.filter = view.allow();
  engine::CacheAwareBatchSearcher searcher(nullptr);
  std::vector<HitList> results;
  // The handle pins the payload for the scan; eviction only drops the
  // pool's reference.
  VDB_RETURN_NOT_OK(searcher.Search(data.value()->vectors(plan.field),
                                    view.segment().num_rows(), plan.queries,
                                    plan.nq, spec, &results));
  ++out->stats.segments_flat;
  for (size_t q = 0; q < plan.nq; ++q) {
    out->lists[q] = ToRowIds(view.segment(), results[q]);
  }
  return Status::OK();
}

/// Execute one segment of a vector search: indexed path when the segment
/// carries an index for the field, flat scan otherwise. A failing index is
/// surfaced (counted + logged once per query) and rescued by the flat scan
/// instead of being silently swallowed.
Status SearchOneSegment(const SegmentView& view, const VectorSearchPlan& plan,
                        QueryContext* ctx, SegmentPartial* out) {
  if (ctx->Expired()) return Status::Aborted(kDeadlineMessage);
  const storage::Segment& segment = view.segment();
  out->lists.assign(plan.nq, HitList{});
  if (segment.num_rows() == 0) {
    ++out->stats.segments_skipped;
    return Status::OK();
  }
  ++out->stats.segments_scanned;
  out->stats.rows_filtered += view.tombstoned_rows();

  bool index_loaded = false;
  auto acquired = view.AcquireIndex(plan.field, &index_loaded);
  if (!acquired.ok()) {
    // Published index exists but could not be paged in (transient storage
    // error, or corruption — now quarantined). Rescue with the flat path.
    ++out->stats.index_fallbacks;
    if (ctx->TakeIndexFallbackLogToken()) {
      VDB_WARN << "index tier load failed on segment " << segment.id() << ": "
               << acquired.status().ToString() << "; falling back to flat scan";
    }
  } else if (const storage::IndexHandle idx = acquired.value()) {
    if (index_loaded) ++out->stats.index_tier_loads;
    index::SearchOptions idx_options;
    idx_options.k = plan.k;
    idx_options.nprobe = ctx->options().nprobe;
    idx_options.ef_search = std::max(ctx->options().ef_search, plan.k);
    idx_options.filter = view.allow();
    std::vector<HitList> results;
    const Status status = idx->Search(plan.queries, plan.nq, idx_options,
                                      &results);
    if (status.ok()) {
      ++out->stats.segments_indexed;
      for (size_t q = 0; q < plan.nq; ++q) {
        out->lists[q] = ToRowIds(segment, results[q]);
      }
      return Status::OK();
    }
    ++out->stats.index_fallbacks;
    if (ctx->TakeIndexFallbackLogToken()) {
      VDB_WARN << "index search failed on segment " << segment.id() << ": "
               << status.ToString() << "; falling back to flat scan";
    }
  }
  return FlatScan(view, plan, out);
}

/// Strategy A on one segment view: attribute index → exact distance on
/// every qualifying live row, for each of the plan's nq queries. Also the
/// rescue path when B/C lose their vector index mid-flight. Pages the data
/// tier in (B/C proper run index-only and never touch it). The candidate
/// collection and liveness resolution run once and are shared by all nq
/// queries; per query the candidates are scored in the same order a
/// single-query run would use, so results are bitwise identical.
Status StrategyAScan(const SegmentView& view, const FilteredSearchPlan& plan,
                     SegmentPartial* out, std::vector<ResultHeap>* heaps) {
  bool loaded_now = false;
  auto data = view.AcquireData(&loaded_now);
  if (!data.ok()) return data.status();
  if (loaded_now) ++out->stats.data_tier_loads;
  const storage::Segment& segment = view.segment();
  const auto& column = segment.attribute(plan.attribute);
  std::vector<RowId> candidates;
  column.CollectInRange(plan.range.lo, plan.range.hi, &candidates);
  // Resolve row positions and liveness once for the whole batch.
  std::vector<std::pair<RowId, size_t>> live;
  live.reserve(candidates.size());
  for (RowId row_id : candidates) {
    const auto pos = segment.PositionOf(row_id);
    if (!pos || !view.IsLive(*pos)) continue;
    live.emplace_back(row_id, *pos);
  }
  for (size_t q = 0; q < plan.nq; ++q) {
    const float* query = plan.queries + q * plan.dim;
    ResultHeap& heap = (*heaps)[q];
    for (const auto& [row_id, pos] : live) {
      heap.Push(row_id,
                simd::ComputeFloatScore(plan.metric, query,
                                        data.value()->vector(plan.field, pos),
                                        plan.dim));
    }
  }
  return Status::OK();
}

/// Execute one segment of a filtered search with the cost-model strategy
/// (Sec 4.1 strategy D), consuming the view's shared allow-bitset instead
/// of re-resolving tombstones per row. All nq queries share the filter, so
/// candidate collection, the strategy decision, and (for strategy B) the
/// allow-bitmap are computed once and reused across the batch.
Status FilterOneSegment(const SegmentView& view, const FilteredSearchPlan& plan,
                        QueryContext* ctx, SegmentPartial* out) {
  if (ctx->Expired()) return Status::Aborted(kDeadlineMessage);
  const storage::Segment& segment = view.segment();
  out->lists.assign(plan.nq, HitList{});
  const auto& column = segment.attribute(plan.attribute);
  const size_t passing =
      segment.num_rows() == 0
          ? 0
          : column.CountInRange(plan.range.lo, plan.range.hi);
  if (passing == 0) {
    ++out->stats.segments_skipped;
    return Status::OK();
  }
  ++out->stats.segments_scanned;
  out->stats.rows_filtered += view.tombstoned_rows();

  const QueryOptions& options = ctx->options();
  query::CostModelInputs inputs;
  inputs.n = segment.num_rows();
  inputs.dim = plan.dim;
  inputs.k = options.k;
  inputs.pass_fraction =
      static_cast<double>(passing) / static_cast<double>(segment.num_rows());
  inputs.theta = options.theta;
  storage::IndexHandle index_handle;
  bool index_loaded = false;
  {
    auto acquired = view.AcquireIndex(plan.field, &index_loaded);
    if (acquired.ok()) {
      index_handle = acquired.value();
      if (index_handle != nullptr && index_loaded) {
        ++out->stats.index_tier_loads;
      }
    } else {
      // Unloadable published index: degrade to the exact strategy A.
      ++out->stats.index_fallbacks;
      if (ctx->TakeIndexFallbackLogToken()) {
        VDB_WARN << "index tier load failed on segment " << segment.id()
                 << ": " << acquired.status().ToString()
                 << "; falling back to exact filter scan";
      }
    }
  }
  const index::VectorIndex* idx = index_handle.get();
  if (const auto* ivf = dynamic_cast<const index::IvfIndex*>(idx)) {
    inputs.nlist = ivf->nlist();
    inputs.nprobe = options.nprobe;
  }
  query::FilterStrategy strategy = idx == nullptr
                                       ? query::FilterStrategy::kA
                                       : query::ChooseStrategy(inputs);

  std::vector<ResultHeap> heaps;
  heaps.reserve(plan.nq);
  for (size_t q = 0; q < plan.nq; ++q) {
    heaps.push_back(ResultHeap::ForMetric(options.k, plan.metric));
  }
  auto rescue = [&](const Status& status) -> Status {
    ++out->stats.index_fallbacks;
    if (ctx->TakeIndexFallbackLogToken()) {
      VDB_WARN << "index search failed on segment " << segment.id() << ": "
               << status.ToString() << "; falling back to exact filter scan";
    }
    return StrategyAScan(view, plan, out, &heaps);
  };

  switch (strategy) {
    case query::FilterStrategy::kA: {
      VDB_RETURN_NOT_OK(StrategyAScan(view, plan, out, &heaps));
      break;
    }
    case query::FilterStrategy::kC: {
      const size_t fetch = std::max<size_t>(
          options.k, static_cast<size_t>(options.theta *
                                         static_cast<double>(options.k)));
      index::SearchOptions idx_options;
      idx_options.k = fetch;
      idx_options.nprobe = options.nprobe;
      idx_options.ef_search = std::max(options.ef_search, fetch);
      idx_options.filter = view.allow();
      std::vector<HitList> results;
      const Status status =
          idx->Search(plan.queries, plan.nq, idx_options, &results);
      if (!status.ok()) {
        VDB_RETURN_NOT_OK(rescue(status));
        break;
      }
      ++out->stats.segments_indexed;
      for (size_t q = 0; q < plan.nq; ++q) {
        size_t taken = 0;
        for (const SearchHit& hit : results[q]) {
          const size_t pos = static_cast<size_t>(hit.id);
          const double value = column.ValueAt(pos);
          if (value < plan.range.lo || value > plan.range.hi) continue;
          heaps[q].Push(segment.row_id_at(pos), hit.score);
          if (++taken == options.k) break;
        }
      }
      break;
    }
    default: {  // Strategy B: attribute bitmap ∧ tombstone bitset.
      std::vector<RowId> candidates;
      column.CollectInRange(plan.range.lo, plan.range.hi, &candidates);
      Bitset allowed(segment.num_rows());
      for (RowId row_id : candidates) {
        if (auto pos = segment.PositionOf(row_id)) {
          if (view.IsLive(*pos)) allowed.Set(*pos);
        }
      }
      index::SearchOptions idx_options;
      idx_options.k = options.k;
      idx_options.nprobe = options.nprobe;
      idx_options.ef_search = std::max(options.ef_search, options.k);
      idx_options.filter = &allowed;
      std::vector<HitList> results;
      const Status status =
          idx->Search(plan.queries, plan.nq, idx_options, &results);
      if (!status.ok()) {
        VDB_RETURN_NOT_OK(rescue(status));
        break;
      }
      ++out->stats.segments_indexed;
      for (size_t q = 0; q < plan.nq; ++q) {
        for (const SearchHit& hit : results[q]) {
          heaps[q].Push(segment.row_id_at(static_cast<size_t>(hit.id)),
                        hit.score);
        }
      }
      break;
    }
  }
  for (size_t q = 0; q < plan.nq; ++q) out->lists[q] = heaps[q].TakeSorted();
  return Status::OK();
}

}  // namespace

std::vector<SegmentViewPtr> SegmentExecutor::ResolveViews(
    const storage::Snapshot& snapshot, QueryContext* ctx) {
  Timer timer;
  obs::TraceSpan span(&ctx->trace(), "resolve_views", ctx->root_span());
  std::vector<SegmentViewPtr> views;
  views.reserve(snapshot.segments.size());
  for (const storage::SegmentPtr& segment : snapshot.segments) {
    if (!ctx->Owns(segment->id())) continue;
    bool built = false;
    auto erased = snapshot.view_cache->GetOrCreate(
        segment->id(),
        [&]() { return SegmentView::Make(snapshot, segment); }, &built);
    if (built) {
      ++ctx->stats().view_cache_misses;
    } else {
      ++ctx->stats().view_cache_hits;
    }
    views.push_back(std::static_pointer_cast<const SegmentView>(erased));
  }
  ctx->stats().plan_seconds += timer.ElapsedSeconds();
  return views;
}

Result<std::vector<HitList>> SegmentExecutor::SearchVectors(
    const storage::Snapshot& snapshot, const VectorSearchPlan& plan,
    QueryContext* ctx) const {
  Timer total;
  if (ctx->Expired()) return Status::Aborted(kDeadlineMessage);
  const std::vector<SegmentViewPtr> views = ResolveViews(snapshot, ctx);
  ctx->stats().queries += plan.nq;

  Timer search_timer;
  std::vector<SegmentPartial> partials(views.size());
  {
    obs::TraceSpan scan_span(&ctx->trace(), "scan_segments",
                             ctx->root_span());
    auto run_segment = [&](size_t i) {
      obs::TraceSpan segment_span(
          &ctx->trace(),
          "segment:" + std::to_string(views[i]->segment().id()), &scan_span);
      partials[i].status =
          SearchOneSegment(*views[i], plan, ctx, &partials[i]);
    };
    if (pool_ != nullptr && views.size() > 1) {
      pool_->ParallelFor(views.size(), run_segment);
    } else {
      for (size_t i = 0; i < views.size(); ++i) run_segment(i);
    }
  }
  ctx->stats().search_seconds += search_timer.ElapsedSeconds();

  // Merge in fixed segment order on the calling thread: results do not
  // depend on worker count or scheduling.
  Timer merge_timer;
  obs::TraceSpan merge_span(&ctx->trace(), "merge", ctx->root_span());
  for (SegmentPartial& partial : partials) {
    if (!partial.status.ok()) return partial.status;
    ctx->stats().MergeFrom(partial.stats);
  }
  std::vector<HitList> out(plan.nq);
  for (size_t q = 0; q < plan.nq; ++q) {
    ResultHeap heap = ResultHeap::ForMetric(plan.k, plan.metric);
    for (const SegmentPartial& partial : partials) {
      for (const SearchHit& hit : partial.lists[q]) {
        heap.Push(hit.id, hit.score);
      }
    }
    out[q] = heap.TakeSorted();
  }
  ctx->stats().merge_seconds += merge_timer.ElapsedSeconds();
  ctx->stats().total_seconds += total.ElapsedSeconds();
  return out;
}

Result<std::vector<HitList>> SegmentExecutor::SearchFiltered(
    const storage::Snapshot& snapshot, const FilteredSearchPlan& plan,
    QueryContext* ctx) const {
  Timer total;
  if (ctx->Expired()) return Status::Aborted(kDeadlineMessage);
  const std::vector<SegmentViewPtr> views = ResolveViews(snapshot, ctx);
  ctx->stats().queries += plan.nq;

  Timer search_timer;
  std::vector<SegmentPartial> partials(views.size());
  {
    obs::TraceSpan scan_span(&ctx->trace(), "scan_segments",
                             ctx->root_span());
    auto run_segment = [&](size_t i) {
      obs::TraceSpan segment_span(
          &ctx->trace(),
          "segment:" + std::to_string(views[i]->segment().id()), &scan_span);
      partials[i].status =
          FilterOneSegment(*views[i], plan, ctx, &partials[i]);
    };
    if (pool_ != nullptr && views.size() > 1) {
      pool_->ParallelFor(views.size(), run_segment);
    } else {
      for (size_t i = 0; i < views.size(); ++i) run_segment(i);
    }
  }
  ctx->stats().search_seconds += search_timer.ElapsedSeconds();

  Timer merge_timer;
  obs::TraceSpan merge_span(&ctx->trace(), "merge", ctx->root_span());
  for (SegmentPartial& partial : partials) {
    if (!partial.status.ok()) return partial.status;
    ctx->stats().MergeFrom(partial.stats);
  }
  std::vector<HitList> out(plan.nq);
  for (size_t q = 0; q < plan.nq; ++q) {
    ResultHeap heap = ResultHeap::ForMetric(ctx->options().k, plan.metric);
    for (const SegmentPartial& partial : partials) {
      for (const SearchHit& hit : partial.lists[q]) {
        heap.Push(hit.id, hit.score);
      }
    }
    out[q] = heap.TakeSorted();
  }
  ctx->stats().merge_seconds += merge_timer.ElapsedSeconds();
  ctx->stats().total_seconds += total.ElapsedSeconds();
  return out;
}

Result<bool> SegmentExecutor::ScoreEntity(
    const std::vector<SegmentViewPtr>& views,
    const std::vector<const float*>& queries,
    const std::vector<float>& weights, const std::vector<size_t>& dims,
    MetricType metric, RowId row_id, float* out) {
  for (const SegmentViewPtr& view : views) {
    const auto pos = view->segment().PositionOf(row_id);
    if (!pos || !view->IsLive(*pos)) continue;
    auto data = view->AcquireData();
    if (!data.ok()) return data.status();
    float total = 0.0f;
    for (size_t f = 0; f < queries.size(); ++f) {
      const float weight = weights.empty() ? 1.0f : weights[f];
      total += weight * simd::ComputeFloatScore(
                            metric, queries[f],
                            data.value()->vector(f, *pos), dims[f]);
    }
    *out = total;
    return true;
  }
  return false;
}

}  // namespace exec
}  // namespace vectordb
