#ifndef VECTORDB_EXEC_SEGMENT_EXECUTOR_H_
#define VECTORDB_EXEC_SEGMENT_EXECUTOR_H_

#include <vector>

#include "common/threadpool.h"
#include "exec/query_context.h"
#include "exec/segment_view.h"
#include "query/filter_strategies.h"

namespace vectordb {
namespace exec {

/// What to run for a plain (or scoped, or multi-vector-round) vector query:
/// one field, nq query vectors, top-k per query. `k` is the *effective*
/// fetch depth — the multi-vector iterative-merge rounds pass their doubling
/// k' here while the user-facing k stays in QueryContext::options().
struct VectorSearchPlan {
  size_t field = 0;
  size_t dim = 0;
  MetricType metric = MetricType::kL2;
  const float* queries = nullptr;
  size_t nq = 0;
  size_t k = 0;
};

/// One attribute-filtered scan (Sec 4.1): per-segment cost-based strategy
/// selection over the shared tombstone allow-bitset. `nq` query vectors
/// share one filter: the candidate collection, the allow-bitmap, and the
/// strategy choice are computed once per segment and amortized across all
/// nq queries (the serving tier's batch coalescing relies on this), while
/// each query still gets its own independent top-k — results are bitwise
/// identical to running the queries one at a time.
struct FilteredSearchPlan {
  size_t field = 0;
  size_t dim = 0;
  MetricType metric = MetricType::kL2;
  const float* queries = nullptr;  ///< nq contiguous query vectors.
  size_t nq = 1;
  size_t attribute = 0;
  query::AttrRange range;
};

/// The one segment-fan-out engine behind every collection read path
/// (Sec 3.3 / 5.2: snapshot → per-segment execution scheduled across cores
/// → global merge). Each owned segment becomes one task producing its own
/// per-query partial top-k; tasks run across the pool (or inline when the
/// pool is null), and the calling thread merges partials in fixed segment
/// order — results are therefore bit-identical no matter how many workers
/// run or how the scheduler interleaves them.
class SegmentExecutor {
 public:
  /// @param pool worker pool for inter-segment parallelism; nullptr runs
  ///   every segment sequentially on the calling thread.
  explicit SegmentExecutor(ThreadPool* pool) : pool_(pool) {}

  /// Resolve the views of every segment the context owns, through the
  /// snapshot's view cache (records cache hits/misses and plan time).
  static std::vector<SegmentViewPtr> ResolveViews(
      const storage::Snapshot& snapshot, QueryContext* ctx);

  /// Top-k of each query vector over all owned segments.
  Result<std::vector<HitList>> SearchVectors(const storage::Snapshot& snapshot,
                                             const VectorSearchPlan& plan,
                                             QueryContext* ctx) const;

  /// Attribute-filtered top-k of each of the plan's nq queries (strategy
  /// A/B/C chosen per segment by the cost model; index failures degrade to
  /// the exact strategy A). One HitList per query, in query order.
  Result<std::vector<HitList>> SearchFiltered(const storage::Snapshot& snapshot,
                                              const FilteredSearchPlan& plan,
                                              QueryContext* ctx) const;

  /// Exact weighted-sum aggregate score of one entity across resolved
  /// views (the random-access leg of multi-vector iterative merging).
  /// False when the row is absent or tombstoned; an error when the owning
  /// segment's data tier could not be paged in. Empty weights = all 1.
  static Result<bool> ScoreEntity(const std::vector<SegmentViewPtr>& views,
                                  const std::vector<const float*>& queries,
                                  const std::vector<float>& weights,
                                  const std::vector<size_t>& dims,
                                  MetricType metric, RowId row_id, float* out);

 private:
  ThreadPool* pool_;
};

}  // namespace exec
}  // namespace vectordb

#endif  // VECTORDB_EXEC_SEGMENT_EXECUTOR_H_
