#include "exec/query_context.h"

#include "obs/catalog.h"

namespace vectordb {
namespace exec {

Status ValidateQueryOptions(const QueryOptions& options, size_t nq) {
  if (options.k == 0) {
    return Status::InvalidArgument("k must be > 0");
  }
  if (nq == 0) {
    return Status::InvalidArgument("at least one query vector is required");
  }
  if (options.theta <= 1.0) {
    return Status::InvalidArgument(
        "theta must be > 1 (strategy C over-fetch factor)");
  }
  if (options.timeout_seconds < 0.0) {
    return Status::InvalidArgument("timeout_seconds must be >= 0");
  }
  return Status::OK();
}

void QueryStats::MergeFrom(const QueryStats& other) {
  queries += other.queries;
  segments_scanned += other.segments_scanned;
  segments_skipped += other.segments_skipped;
  segments_indexed += other.segments_indexed;
  segments_flat += other.segments_flat;
  index_fallbacks += other.index_fallbacks;
  rows_filtered += other.rows_filtered;
  view_cache_hits += other.view_cache_hits;
  view_cache_misses += other.view_cache_misses;
  data_tier_loads += other.data_tier_loads;
  index_tier_loads += other.index_tier_loads;
  plan_seconds += other.plan_seconds;
  search_seconds += other.search_seconds;
  merge_seconds += other.merge_seconds;
  total_seconds += other.total_seconds;
}

void RecordQueryMetrics(const QueryStats& stats, const Status& status) {
  obs::ExecMetrics& m = obs::Exec();
  m.queries->Inc(stats.queries);
  m.index_fallbacks->Inc(stats.index_fallbacks);
  m.view_cache_hits->Inc(stats.view_cache_hits);
  m.view_cache_misses->Inc(stats.view_cache_misses);
  m.last_query_seconds->Set(stats.total_seconds);
  m.query_seconds->Observe(stats.total_seconds);
  m.fanout_segments->Observe(static_cast<double>(stats.segments_scanned));
  if (!status.ok() && status.IsAborted()) {
    m.deadline_aborts->Inc();
  }
}

}  // namespace exec
}  // namespace vectordb
