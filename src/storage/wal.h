#ifndef VECTORDB_STORAGE_WAL_H_
#define VECTORDB_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/filesystem.h"

namespace vectordb {
namespace storage {

/// Kinds of logged operations.
enum class WalOpType : uint32_t {
  kInsert = 1,
  kDelete = 2,
  kFlushMarker = 3,  ///< Rows up to this point are durable in segments.
  kDdl = 4,          ///< Collection create/drop, index build requests.
};

struct WalRecord {
  uint64_t lsn = 0;
  WalOpType type = WalOpType::kInsert;
  std::string collection;
  std::string payload;
};

/// Write-ahead log over a FileSystem object (Sec 5.1: writes are
/// materialized to the log and acknowledged; a background thread consumes
/// them — and Sec 5.3: in distributed mode the *log*, not the data, is what
/// the writer ships to shared storage). Each record is CRC-checked; replay
/// stops cleanly at the first torn or corrupt record.
class WriteAheadLog {
 public:
  WriteAheadLog(FileSystemPtr fs, std::string path)
      : fs_(std::move(fs)), path_(std::move(path)) {}

  /// Append a record; assigns and returns its LSN via `record->lsn`.
  Status Append(WalRecord* record);

  /// Replay all intact records in LSN order.
  Status Replay(
      const std::function<Status(const WalRecord&)>& callback) const;

  /// Replay only records with lsn > `after_lsn` (reader tailing).
  Status ReplayFrom(
      uint64_t after_lsn,
      const std::function<Status(const WalRecord&)>& callback) const;

  /// Truncate the log (after a checkpoint made all records durable).
  Status Reset();

  uint64_t last_lsn();

 private:
  FileSystemPtr fs_;
  std::string path_;
  mutable Mutex mu_{VDB_LOCK_RANK(kWal)};
  uint64_t next_lsn_ VDB_GUARDED_BY(mu_) = 1;
  bool recovered_ VDB_GUARDED_BY(mu_) = false;

  Status RecoverLsnLocked() VDB_REQUIRES(mu_);
};

}  // namespace storage
}  // namespace vectordb

#endif  // VECTORDB_STORAGE_WAL_H_
