#include "storage/fault_injection.h"

#include <algorithm>

#include "obs/catalog.h"

namespace vectordb {
namespace storage {

size_t FaultInjectionFileSystem::AddRule(const FaultRule& rule) {
  MutexLock lock(&mu_);
  rules_.push_back(RuleState{rule});
  return rules_.size() - 1;
}

void FaultInjectionFileSystem::RemoveRule(size_t id) {
  MutexLock lock(&mu_);
  if (id < rules_.size()) rules_[id].removed = true;
}

void FaultInjectionFileSystem::ClearRules() {
  MutexLock lock(&mu_);
  rules_.clear();
}

size_t FaultInjectionFileSystem::TriggerCount(size_t id) const {
  MutexLock lock(&mu_);
  return id < rules_.size() ? rules_[id].triggers : 0;
}

void FaultInjectionFileSystem::set_track_unsynced_appends(bool on) {
  MutexLock lock(&mu_);
  track_unsynced_ = on;
  if (!on) unsynced_bytes_.clear();
}

void FaultInjectionFileSystem::SyncAll() {
  MutexLock lock(&mu_);
  unsynced_bytes_.clear();
}

bool FaultInjectionFileSystem::crashed() const {
  MutexLock lock(&mu_);
  return crashed_;
}

Status FaultInjectionFileSystem::Crash() {
  MutexLock lock(&mu_);
  return CrashLocked();
}

void FaultInjectionFileSystem::Restart() {
  MutexLock lock(&mu_);
  crashed_ = false;
}

Status FaultInjectionFileSystem::CrashLocked() {
  // Un-synced appended bytes never made it out of the page cache: truncate
  // each file back to its last durable length.
  for (const auto& [path, dropped] : unsynced_bytes_) {
    std::string data;
    Status status = inner_->Read(path, &data);
    if (status.IsNotFound()) continue;
    VDB_RETURN_NOT_OK(status);
    data.resize(data.size() >= dropped ? data.size() - dropped : 0);
    VDB_RETURN_NOT_OK(inner_->Write(path, data));
  }
  unsynced_bytes_.clear();
  crashed_ = true;
  return Status::OK();
}

void FaultInjectionFileSystem::FlipBit(std::string* data, size_t bit) {
  if (data->empty()) return;
  const size_t byte = (bit / 8) % data->size();
  (*data)[byte] = static_cast<char>((*data)[byte] ^ (1u << (bit % 8)));
}

FaultInjectionFileSystem::Firing FaultInjectionFileSystem::EvaluateLocked(
    uint32_t op, const std::string& path) {
  stats_.ops_seen.fetch_add(1, std::memory_order_relaxed);
  Firing firing;
  for (RuleState& state : rules_) {
    if (state.removed) continue;
    const FaultRule& rule = state.rule;
    if ((rule.ops & op) == 0) continue;
    if (path.compare(0, rule.path_prefix.size(), rule.path_prefix) != 0) {
      continue;
    }
    ++state.matches;
    bool fire;
    if (rule.nth > 0) {
      fire = state.matches == rule.nth;
    } else {
      // Draw even when saturated so the RNG stream — and therefore every
      // later probabilistic rule — is independent of trigger history.
      fire = rng_.NextDouble() < rule.probability;
    }
    if (fire && state.triggers < rule.max_triggers && !firing.fired) {
      ++state.triggers;
      firing.fired = true;
      firing.effect = rule.effect;
      firing.rule = rule;
      stats_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      obs::Storage().faults_injected->Inc();
    }
  }
  return firing;
}

Status FaultInjectionFileSystem::Write(const std::string& path,
                                       const std::string& data) {
  MutexLock lock(&mu_);
  if (crashed_) return Status::Unavailable("store crashed: " + path);
  const Firing firing = EvaluateLocked(kOpWrite, path);
  if (!firing.fired) return inner_->Write(path, data);
  switch (firing.effect) {
    case FaultEffect::kTransient:
      stats_.transient.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(firing.rule.message + ": " + path);
    case FaultEffect::kIOError:
      stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError(firing.rule.message + ": " + path);
    case FaultEffect::kCorruption:
      stats_.corruptions.fetch_add(1, std::memory_order_relaxed);
      return Status::Corruption(firing.rule.message + ": " + path);
    case FaultEffect::kBitFlip: {
      stats_.bit_flips.fetch_add(1, std::memory_order_relaxed);
      std::string corrupted = data;
      FlipBit(&corrupted, firing.rule.flip_bit);
      return inner_->Write(path, corrupted);
    }
    case FaultEffect::kCrash: {
      stats_.crashes.fetch_add(1, std::memory_order_relaxed);
      Status status = CrashLocked();
      if (!status.ok()) return status;
      return Status::Unavailable(firing.rule.message + " (crash): " + path);
    }
    case FaultEffect::kTornAppend:
      // A tear is only meaningful for appends; degrade to an IO error.
      stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError(firing.rule.message + ": " + path);
  }
  return Status::Internal("unreachable");
}

Status FaultInjectionFileSystem::Read(const std::string& path,
                                      std::string* data) {
  MutexLock lock(&mu_);
  if (crashed_) return Status::Unavailable("store crashed: " + path);
  const Firing firing = EvaluateLocked(kOpRead, path);
  if (!firing.fired) return inner_->Read(path, data);
  switch (firing.effect) {
    case FaultEffect::kTransient:
      stats_.transient.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(firing.rule.message + ": " + path);
    case FaultEffect::kIOError:
      stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError(firing.rule.message + ": " + path);
    case FaultEffect::kCorruption:
      stats_.corruptions.fetch_add(1, std::memory_order_relaxed);
      return Status::Corruption(firing.rule.message + ": " + path);
    case FaultEffect::kBitFlip: {
      VDB_RETURN_NOT_OK(inner_->Read(path, data));
      stats_.bit_flips.fetch_add(1, std::memory_order_relaxed);
      FlipBit(data, firing.rule.flip_bit);
      return Status::OK();
    }
    case FaultEffect::kCrash: {
      stats_.crashes.fetch_add(1, std::memory_order_relaxed);
      Status status = CrashLocked();
      if (!status.ok()) return status;
      return Status::Unavailable(firing.rule.message + " (crash): " + path);
    }
    case FaultEffect::kTornAppend:
      stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError(firing.rule.message + ": " + path);
  }
  return Status::Internal("unreachable");
}

Status FaultInjectionFileSystem::Append(const std::string& path,
                                        const std::string& data) {
  MutexLock lock(&mu_);
  if (crashed_) return Status::Unavailable("store crashed: " + path);
  const Firing firing = EvaluateLocked(kOpAppend, path);
  if (!firing.fired) {
    VDB_RETURN_NOT_OK(inner_->Append(path, data));
    if (track_unsynced_) unsynced_bytes_[path] += data.size();
    return Status::OK();
  }
  switch (firing.effect) {
    case FaultEffect::kTransient:
      stats_.transient.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(firing.rule.message + ": " + path);
    case FaultEffect::kIOError:
      stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError(firing.rule.message + ": " + path);
    case FaultEffect::kCorruption:
      stats_.corruptions.fetch_add(1, std::memory_order_relaxed);
      return Status::Corruption(firing.rule.message + ": " + path);
    case FaultEffect::kBitFlip: {
      stats_.bit_flips.fetch_add(1, std::memory_order_relaxed);
      std::string corrupted = data;
      FlipBit(&corrupted, firing.rule.flip_bit);
      VDB_RETURN_NOT_OK(inner_->Append(path, corrupted));
      if (track_unsynced_) unsynced_bytes_[path] += corrupted.size();
      return Status::OK();
    }
    case FaultEffect::kTornAppend: {
      stats_.torn_appends.fetch_add(1, std::memory_order_relaxed);
      const size_t keep = static_cast<size_t>(
          static_cast<double>(data.size()) * firing.rule.torn_fraction);
      if (keep > 0) {
        VDB_RETURN_NOT_OK(inner_->Append(path, data.substr(0, keep)));
        if (track_unsynced_) unsynced_bytes_[path] += keep;
      }
      return Status::Corruption(firing.rule.message + " (torn): " + path);
    }
    case FaultEffect::kCrash: {
      stats_.crashes.fetch_add(1, std::memory_order_relaxed);
      Status status = CrashLocked();
      if (!status.ok()) return status;
      return Status::Unavailable(firing.rule.message + " (crash): " + path);
    }
  }
  return Status::Internal("unreachable");
}

Result<bool> FaultInjectionFileSystem::Exists(const std::string& path) {
  MutexLock lock(&mu_);
  if (crashed_) return Status::Unavailable("store crashed: " + path);
  const Firing firing = EvaluateLocked(kOpExists, path);
  if (!firing.fired) return inner_->Exists(path);
  switch (firing.effect) {
    case FaultEffect::kTransient:
      stats_.transient.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(firing.rule.message + ": " + path);
    case FaultEffect::kCorruption:
      stats_.corruptions.fetch_add(1, std::memory_order_relaxed);
      return Status::Corruption(firing.rule.message + ": " + path);
    case FaultEffect::kCrash: {
      stats_.crashes.fetch_add(1, std::memory_order_relaxed);
      Status status = CrashLocked();
      if (!status.ok()) return status;
      return Status::Unavailable(firing.rule.message + " (crash): " + path);
    }
    default:
      stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError(firing.rule.message + ": " + path);
  }
}

Status FaultInjectionFileSystem::Delete(const std::string& path) {
  MutexLock lock(&mu_);
  if (crashed_) return Status::Unavailable("store crashed: " + path);
  const Firing firing = EvaluateLocked(kOpDelete, path);
  if (!firing.fired) {
    unsynced_bytes_.erase(path);
    return inner_->Delete(path);
  }
  switch (firing.effect) {
    case FaultEffect::kTransient:
      stats_.transient.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(firing.rule.message + ": " + path);
    case FaultEffect::kCorruption:
      stats_.corruptions.fetch_add(1, std::memory_order_relaxed);
      return Status::Corruption(firing.rule.message + ": " + path);
    case FaultEffect::kCrash: {
      stats_.crashes.fetch_add(1, std::memory_order_relaxed);
      Status status = CrashLocked();
      if (!status.ok()) return status;
      return Status::Unavailable(firing.rule.message + " (crash): " + path);
    }
    default:
      stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError(firing.rule.message + ": " + path);
  }
}

Result<std::vector<std::string>> FaultInjectionFileSystem::List(
    const std::string& prefix) {
  MutexLock lock(&mu_);
  if (crashed_) return Status::Unavailable("store crashed: " + prefix);
  const Firing firing = EvaluateLocked(kOpList, prefix);
  if (!firing.fired) return inner_->List(prefix);
  switch (firing.effect) {
    case FaultEffect::kTransient:
      stats_.transient.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(firing.rule.message + ": " + prefix);
    case FaultEffect::kCorruption:
      stats_.corruptions.fetch_add(1, std::memory_order_relaxed);
      return Status::Corruption(firing.rule.message + ": " + prefix);
    case FaultEffect::kCrash: {
      stats_.crashes.fetch_add(1, std::memory_order_relaxed);
      Status status = CrashLocked();
      if (!status.ok()) return status;
      return Status::Unavailable(firing.rule.message + " (crash): " + prefix);
    }
    default:
      stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError(firing.rule.message + ": " + prefix);
  }
}

}  // namespace storage
}  // namespace vectordb
