#ifndef VECTORDB_STORAGE_SEGMENT_H_
#define VECTORDB_STORAGE_SEGMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/types.h"
#include "index/index.h"

namespace vectordb {
namespace storage {

/// Storage-level schema of a segment: µ vector fields (multi-vector
/// entities, Sec 2.4) and named numeric attributes.
struct SegmentSchema {
  std::vector<size_t> vector_dims;
  std::vector<std::string> attribute_names;

  bool operator==(const SegmentSchema& other) const = default;
};

/// The demand-pageable vector payload of a segment: one contiguous buffer
/// per vector field, ordered by row id. Immutable once built; shared
/// between the owning Segment, the buffer pool, and in-flight queries via
/// shared_ptr so eviction never invalidates a running scan.
class SegmentData {
 public:
  SegmentData(std::vector<size_t> dims, std::vector<std::vector<float>> fields)
      : dims_(std::move(dims)), fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const float* vectors(size_t field) const { return fields_[field].data(); }
  const float* vector(size_t field, size_t position) const {
    return fields_[field].data() + position * dims_[field];
  }
  const std::vector<float>& field(size_t f) const { return fields_[f]; }

  size_t bytes() const {
    size_t total = 0;
    for (const auto& f : fields_) total += f.capacity() * sizeof(float);
    return total;
  }

 private:
  std::vector<size_t> dims_;
  std::vector<std::vector<float>> fields_;
};

using SegmentDataPtr = std::shared_ptr<const SegmentData>;
using IndexHandle = std::shared_ptr<const index::VectorIndex>;

/// Immutable columnar segment (Sec 2.3/2.4) — the basic unit of searching,
/// scheduling, and buffering.
///
/// Format v2 decouples the segment into three residency tiers:
///
///  * The **spine** (row ids + attribute columns) is always resident: it is
///    small, and snapshot bookkeeping (PositionOf, tombstones, live-row
///    counting, attribute filters) runs against it without IO.
///  * The **data tier** (SegmentData: the vector columns) is demand-paged.
///    A freshly built segment pins its data; once persisted, the owner may
///    call MakeDataEvictable() so residency is controlled by the buffer
///    pool (which holds the strong reference) while the segment keeps only
///    a weak one. AcquireData() revives or reloads it.
///  * The **index tier** is a lazy per-field slot {version, handle}. v2
///    segments never embed index bytes in the data artifact; indexes are
///    separate versioned files published through the manifest, fetched on
///    first use via AcquireIndex().
///
/// Vectors of each field are stored contiguously, ordered by row id, so a
/// row id resolves to its vector by position (the {A.v1, B.v1, C.v1, A.v2,
/// ...} layout of Sec 2.4). Each attribute is stored as an array of
/// (value, row id) pairs sorted by value, with per-page min/max skip
/// pointers (Snowflake-style).
class Segment {
 public:
  /// Sorted-by-value attribute column with skip pointers.
  class AttributeColumn {
   public:
    static constexpr size_t kPageSize = 256;

    void Build(std::vector<std::pair<double, RowId>> sorted_pairs,
               std::vector<double> by_position);

    size_t size() const { return sorted_.size(); }

    /// Row ids whose value lies in [lo, hi]; appended to `out`.
    /// Uses the skip pointers to seek to the first relevant page.
    void CollectInRange(double lo, double hi, std::vector<RowId>* out) const;

    /// Count of rows in [lo, hi] without materializing ids (cost model).
    size_t CountInRange(double lo, double hi) const;

    /// Attribute value of the row at storage `position`.
    double ValueAt(size_t position) const { return by_position_[position]; }

    double min_value() const { return sorted_.empty() ? 0.0 : sorted_.front().first; }
    double max_value() const { return sorted_.empty() ? 0.0 : sorted_.back().first; }

    const std::vector<std::pair<double, RowId>>& sorted_pairs() const {
      return sorted_;
    }

   private:
    friend class Segment;
    std::vector<std::pair<double, RowId>> sorted_;
    std::vector<double> page_min_;
    std::vector<double> page_max_;
    std::vector<double> by_position_;
  };

  /// Loads the data tier from durable storage (typically routed through the
  /// buffer pool so residency is accounted and evictable).
  using DataLoader = std::function<Result<SegmentDataPtr>()>;
  /// Loads one field's index artifact at a specific published version.
  using IndexLoader =
      std::function<Result<IndexHandle>(size_t field, uint64_t version)>;

  Segment(SegmentId id, SegmentSchema schema)
      : id_(id), schema_(std::move(schema)) {}

  SegmentId id() const { return id_; }
  const SegmentSchema& schema() const { return schema_; }
  size_t num_rows() const { return row_ids_.size(); }
  size_t num_vector_fields() const { return schema_.vector_dims.size(); }

  const std::vector<RowId>& row_ids() const { return row_ids_; }
  RowId row_id_at(size_t position) const { return row_ids_[position]; }

  /// Position of `row_id` in this segment, if present (binary search; row
  /// ids are sorted).
  std::optional<size_t> PositionOf(RowId row_id) const;

  // ------------------------------------------------------------ data tier --

  /// Returns the vector payload, loading it through the data loader if it
  /// is not resident. The returned handle pins the data for the caller's
  /// scope; eviction only drops the pool's reference. Sets `*loaded_now`
  /// when this call had to page the tier in (stats attribution).
  Result<SegmentDataPtr> AcquireData(bool* loaded_now = nullptr) const;

  /// True when the data tier is resident (pinned or alive in the pool).
  bool DataResident() const;

  /// Installs the loader used to demand-page the data tier.
  void SetDataLoader(DataLoader loader);

  /// Drops the segment's strong data reference, keeping a weak one; after
  /// this the buffer pool alone decides residency. Requires a data loader.
  void MakeDataEvictable();

  /// Contiguous vector data of one field (num_rows × dim). These raw
  /// accessors require *pinned* data (builder-fresh or never made
  /// evictable) and abort otherwise; pageable callers must AcquireData().
  const float* vectors(size_t field) const {
    return ResidentDataOrDie()->vectors(field);
  }
  const float* vector(size_t field, size_t position) const {
    return ResidentDataOrDie()->vector(field, position);
  }

  // ----------------------------------------------------------- attributes --

  size_t num_attributes() const { return attributes_.size(); }
  const AttributeColumn& attribute(size_t idx) const { return attributes_[idx]; }
  /// Index of the named attribute, or nullopt.
  std::optional<size_t> AttributeIndex(const std::string& name) const;

  // ----------------------------------------------------------- index tier --

  /// Returns the field's index: the pinned handle, the pool-resident one,
  /// or — when a published version exists but is cold — the result of the
  /// index loader. A null handle with OK status means "no index; use the
  /// flat path". A Corruption load failure quarantines the slot (version
  /// reset to 0) so the next BuildIndexes() rebuilds it; transient failures
  /// leave the slot intact for retry. Sets `*loaded_now` on a cold load.
  Result<IndexHandle> AcquireIndex(size_t field,
                                   bool* loaded_now = nullptr) const;

  /// Attach an in-process index with no durable artifact (v1 segments and
  /// tests). The handle is pinned: it never pages out.
  void SetIndex(size_t field, index::IndexPtr idx);

  /// Publish a durably written index artifact: records the version for the
  /// manifest and caches the handle weakly (the buffer pool holds the
  /// strong reference).
  void PublishIndex(size_t field, uint64_t version, IndexHandle idx);

  /// Recovery path: record a manifest-published version without loading.
  void RestoreIndexVersion(size_t field, uint64_t version);

  /// (field, version) pairs for every durably published index — what the
  /// manifest records.
  std::vector<std::pair<uint32_t, uint64_t>> IndexEntries() const;

  /// True when the field has a usable index (pinned, or published at a
  /// nonzero version — possibly cold).
  bool HasIndex(size_t field) const;
  /// Published version of the field's index artifact (0 = none).
  uint64_t IndexVersion(size_t field) const;

  /// Installs the loader used to demand-page published index artifacts.
  void SetIndexLoader(IndexLoader loader);

  // ------------------------------------------------------------ footprint --

  /// Always-resident spine: row ids + attribute columns.
  size_t SpineBytes() const;
  /// Currently resident vector payload bytes (0 when paged out).
  size_t DataBytes() const;
  /// Currently resident index bytes across fields (0 when paged out).
  size_t IndexBytes() const;
  /// Total resident footprint = spine + data + index.
  size_t MemoryBytes() const;

  // -------------------------------------------------------- serialization --

  /// Serialize the data artifact (format v2): spine + vector columns, no
  /// index bytes. All persistence must route through storage::SegmentStore
  /// (enforced by the `segment-serialize` lint rule outside src/storage/).
  Status SerializeData(std::string* out) const;

  /// Parse a data artifact. Accepts format v2 and — for compatibility —
  /// format v1, whose trailing inline index blobs are attached as pinned
  /// indexes unless `load_v1_indexes` is false (the data-only reload path).
  /// The returned segment has its data tier pinned.
  static Result<std::shared_ptr<Segment>> DeserializeData(
      const std::string& in, bool load_v1_indexes = true);

  /// Extract the pinned data payload from a segment DeserializeData just
  /// returned and that is still private to the calling thread. Deliberately
  /// reads data_pinned_ without taking tier_mu_: the data-reload path runs
  /// inside the *owning* segment's data loader — i.e. already under a
  /// kSegmentTier-ranked lock — so locking the temporary segment's tier_mu_
  /// here would nest two same-rank locks and trip the lock-order checker
  /// (and the hierarchy) for a lock no other thread can even reach.
  static Result<SegmentDataPtr> TakeDeserializedData(
      const std::shared_ptr<Segment>& segment);

 private:
  friend class SegmentBuilder;

  /// Pin `data` on a segment still private to the constructing thread
  /// (DeserializeData, SegmentBuilder::Finish). Lock-free for the same
  /// reason as TakeDeserializedData: these paths already run under a
  /// kSegmentTier-ranked lock (the owning segment's data loader) or under
  /// MemTable::mu_, and locking the private segment's tier_mu_ would nest
  /// a second lock nobody else can contend on.
  static void InitPinnedData(Segment* segment, SegmentDataPtr data);

  struct IndexSlot {
    uint64_t version = 0;
    IndexHandle pinned;
    std::weak_ptr<const index::VectorIndex> cached;
  };

  /// Raw-accessor guard: returns pinned data or aborts loudly — evictable
  /// segments must be read through AcquireData().
  SegmentDataPtr ResidentDataOrDie() const;

  void EnsureSlotsLocked(size_t field) const VDB_REQUIRES(tier_mu_);

  SegmentId id_;
  SegmentSchema schema_;
  std::vector<RowId> row_ids_;
  std::vector<AttributeColumn> attributes_;

  /// Guards the residency state of both pageable tiers. Loaders run under
  /// this lock (exactly-once per cold miss); they may take the buffer
  /// pool's lock, so the order is strictly tier_mu_ -> pool.
  mutable Mutex tier_mu_{VDB_LOCK_RANK(kSegmentTier)};
  mutable SegmentDataPtr data_pinned_ VDB_GUARDED_BY(tier_mu_);
  mutable std::weak_ptr<const SegmentData> data_cached_ VDB_GUARDED_BY(tier_mu_);
  DataLoader data_loader_ VDB_GUARDED_BY(tier_mu_);
  IndexLoader index_loader_ VDB_GUARDED_BY(tier_mu_);
  mutable std::vector<IndexSlot> slots_ VDB_GUARDED_BY(tier_mu_);
};

using SegmentPtr = std::shared_ptr<Segment>;

/// Accumulates rows and produces an immutable Segment sorted by row id.
class SegmentBuilder {
 public:
  SegmentBuilder(SegmentId id, SegmentSchema schema);

  /// Add one entity. `field_vectors[f]` points at schema.vector_dims[f]
  /// floats; `attribute_values` has one double per schema attribute.
  Status AddRow(RowId row_id, const std::vector<const float*>& field_vectors,
                const std::vector<double>& attribute_values);

  size_t num_rows() const { return rows_.size(); }

  /// Sort, columnarize, and build attribute skip pointers. The returned
  /// segment has its data tier pinned.
  Result<SegmentPtr> Finish();

 private:
  struct Row {
    RowId row_id;
    std::vector<float> vectors;      // Concatenated fields.
    std::vector<double> attributes;
  };

  SegmentId id_;
  SegmentSchema schema_;
  size_t total_dim_ = 0;
  std::vector<Row> rows_;
};

}  // namespace storage
}  // namespace vectordb

#endif  // VECTORDB_STORAGE_SEGMENT_H_
