#ifndef VECTORDB_STORAGE_SEGMENT_H_
#define VECTORDB_STORAGE_SEGMENT_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "index/index.h"

namespace vectordb {
namespace storage {

/// Storage-level schema of a segment: µ vector fields (multi-vector
/// entities, Sec 2.4) and named numeric attributes.
struct SegmentSchema {
  std::vector<size_t> vector_dims;
  std::vector<std::string> attribute_names;

  bool operator==(const SegmentSchema& other) const = default;
};

/// Immutable columnar segment (Sec 2.3/2.4) — the basic unit of searching,
/// scheduling, and buffering:
///
///  * Vectors of each field are stored contiguously, ordered by row id, so
///    a row id resolves to its vector by position (no stored ids per
///    vector). Multi-vector entities store field v0 of all rows, then v1 —
///    the {A.v1, B.v1, C.v1, A.v2, ...} layout of Sec 2.4.
///  * Each attribute is stored as an array of (value, row id) pairs sorted
///    by value, with per-page min/max skip pointers (Snowflake-style).
///  * A per-field vector index may be attached ("index and data are stored
///    in the same segment").
class Segment {
 public:
  /// Sorted-by-value attribute column with skip pointers.
  class AttributeColumn {
   public:
    static constexpr size_t kPageSize = 256;

    void Build(std::vector<std::pair<double, RowId>> sorted_pairs,
               std::vector<double> by_position);

    size_t size() const { return sorted_.size(); }

    /// Row ids whose value lies in [lo, hi]; appended to `out`.
    /// Uses the skip pointers to seek to the first relevant page.
    void CollectInRange(double lo, double hi, std::vector<RowId>* out) const;

    /// Count of rows in [lo, hi] without materializing ids (cost model).
    size_t CountInRange(double lo, double hi) const;

    /// Attribute value of the row at storage `position`.
    double ValueAt(size_t position) const { return by_position_[position]; }

    double min_value() const { return sorted_.empty() ? 0.0 : sorted_.front().first; }
    double max_value() const { return sorted_.empty() ? 0.0 : sorted_.back().first; }

    const std::vector<std::pair<double, RowId>>& sorted_pairs() const {
      return sorted_;
    }

   private:
    friend class Segment;
    std::vector<std::pair<double, RowId>> sorted_;
    std::vector<double> page_min_;
    std::vector<double> page_max_;
    std::vector<double> by_position_;
  };

  Segment(SegmentId id, SegmentSchema schema)
      : id_(id), schema_(std::move(schema)) {}

  SegmentId id() const { return id_; }
  const SegmentSchema& schema() const { return schema_; }
  size_t num_rows() const { return row_ids_.size(); }
  size_t num_vector_fields() const { return schema_.vector_dims.size(); }

  const std::vector<RowId>& row_ids() const { return row_ids_; }
  RowId row_id_at(size_t position) const { return row_ids_[position]; }

  /// Position of `row_id` in this segment, if present (binary search; row
  /// ids are sorted).
  std::optional<size_t> PositionOf(RowId row_id) const;

  /// Contiguous vector data of one field (num_rows × dim).
  const float* vectors(size_t field) const {
    return vector_data_[field].data();
  }
  const float* vector(size_t field, size_t position) const {
    return vector_data_[field].data() + position * schema_.vector_dims[field];
  }

  size_t num_attributes() const { return attributes_.size(); }
  const AttributeColumn& attribute(size_t idx) const { return attributes_[idx]; }
  /// Index of the named attribute, or nullopt.
  std::optional<size_t> AttributeIndex(const std::string& name) const;

  /// Attach / fetch a per-field vector index.
  void SetIndex(size_t field, index::IndexPtr idx);
  const index::VectorIndex* GetIndex(size_t field) const;
  bool HasIndex(size_t field) const { return GetIndex(field) != nullptr; }

  /// Approximate in-memory footprint (buffer-pool accounting unit).
  size_t MemoryBytes() const;

  Status Serialize(std::string* out) const;
  static Result<std::shared_ptr<Segment>> Deserialize(const std::string& in);

 private:
  friend class SegmentBuilder;

  SegmentId id_;
  SegmentSchema schema_;
  std::vector<RowId> row_ids_;
  /// One contiguous buffer per vector field.
  std::vector<std::vector<float>> vector_data_;
  std::vector<AttributeColumn> attributes_;
  std::vector<index::IndexPtr> indexes_;
};

using SegmentPtr = std::shared_ptr<Segment>;

/// Accumulates rows and produces an immutable Segment sorted by row id.
class SegmentBuilder {
 public:
  SegmentBuilder(SegmentId id, SegmentSchema schema);

  /// Add one entity. `field_vectors[f]` points at schema.vector_dims[f]
  /// floats; `attribute_values` has one double per schema attribute.
  Status AddRow(RowId row_id, const std::vector<const float*>& field_vectors,
                const std::vector<double>& attribute_values);

  size_t num_rows() const { return rows_.size(); }

  /// Sort, columnarize, and build attribute skip pointers.
  Result<SegmentPtr> Finish();

 private:
  struct Row {
    RowId row_id;
    std::vector<float> vectors;      // Concatenated fields.
    std::vector<double> attributes;
  };

  SegmentId id_;
  SegmentSchema schema_;
  size_t total_dim_ = 0;
  std::vector<Row> rows_;
};

}  // namespace storage
}  // namespace vectordb

#endif  // VECTORDB_STORAGE_SEGMENT_H_
