#include "storage/filesystem.h"

namespace vectordb {
namespace storage {

// Factories are defined next to each implementation; this TU anchors the
// FileSystem vtable.

}  // namespace storage
}  // namespace vectordb
