#ifndef VECTORDB_STORAGE_MEMTABLE_H_
#define VECTORDB_STORAGE_MEMTABLE_H_

#include <map>
#include <vector>

#include "common/mutex.h"
#include "storage/segment.h"

namespace vectordb {
namespace storage {

/// In-memory write buffer of the LSM structure (Sec 2.3): newly inserted
/// entities accumulate here; once the row-count threshold is reached (or on
/// the periodic flush tick) the MemTable becomes an immutable Segment.
/// Deletions of rows still in the MemTable are applied in place (they were
/// never durable as segments); deletions of flushed rows are handled by the
/// tombstone set above this layer.
class MemTable {
 public:
  explicit MemTable(SegmentSchema schema) : schema_(std::move(schema)) {}

  const SegmentSchema& schema() const { return schema_; }

  /// Buffer one entity. Vectors are copied.
  Status Insert(RowId row_id, const std::vector<const float*>& field_vectors,
                const std::vector<double>& attribute_values);

  /// Remove a buffered row. Returns true if the row was present (in which
  /// case no tombstone is needed).
  bool Delete(RowId row_id);

  size_t num_rows() const;

  /// Materialise the buffered rows as an immutable segment with id
  /// `segment_id` WITHOUT draining the buffer. The caller clears the
  /// MemTable (Clear()) only once the segment is durable on storage; a
  /// failed persist leaves the rows buffered and still covered by the WAL.
  /// Returns a nullptr segment when empty.
  Result<SegmentPtr> BuildSegment(SegmentId segment_id) const;

  /// Drop every buffered row. Call only after the segment built from the
  /// current contents has been persisted.
  void Clear();

 private:
  struct PendingRow {
    std::vector<float> vectors;  // Concatenated fields.
    std::vector<double> attributes;
  };

  SegmentSchema schema_;
  mutable Mutex mu_{VDB_LOCK_RANK(kMemTable)};
  std::map<RowId, PendingRow> rows_ VDB_GUARDED_BY(mu_);
};

}  // namespace storage
}  // namespace vectordb

#endif  // VECTORDB_STORAGE_MEMTABLE_H_
