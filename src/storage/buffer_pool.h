#ifndef VECTORDB_STORAGE_BUFFER_POOL_H_
#define VECTORDB_STORAGE_BUFFER_POOL_H_

#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/mutex.h"
#include "storage/segment.h"

namespace vectordb {
namespace storage {

/// Tiered LRU buffer manager (Sec 2.4, extended per the decoupled-storage
/// design). The caching unit is one *tier* of one segment:
///
///  * a **data entry** (SegmentId) holds the segment's vector payload;
///  * an **index entry** (SegmentId, field) holds one field's index.
///
/// Both tiers share one byte budget and one LRU list. Eviction drops the
/// pool's strong reference; in-flight queries that already acquired a
/// handle keep the blob alive until they finish (shared_ptr residency).
/// Eviction is index-before-data: indexes are rebuildable accelerators and
/// cheaper to lose than the raw vectors, so under pressure all unpinned
/// index entries are considered before any data entry. Pinned segments
/// (Pin/Unpin) are skipped entirely — the "hot segments pinnable" tier.
class BufferPool {
 public:
  enum class Tier { kData, kIndex };

  using DataLoader = std::function<Result<SegmentDataPtr>()>;
  using IndexLoader = std::function<Result<IndexHandle>()>;

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t evictions = 0;
    size_t data_resident_bytes = 0;
    size_t index_resident_bytes = 0;
    size_t resident_entries = 0;
  };

  explicit BufferPool(size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}
  ~BufferPool() { Clear(); }  // Releases this pool's share of the
                              // process-wide resident-bytes gauges.

  /// Get the segment's data tier, loading on a miss. A blob larger than
  /// the whole pool is returned but not cached.
  Result<SegmentDataPtr> FetchData(SegmentId id, const DataLoader& loader);

  /// Get one field's index tier, loading on a miss.
  Result<IndexHandle> FetchIndex(SegmentId id, size_t field,
                                 const IndexLoader& loader);

  /// Install a blob that is already in memory (fresh flush, index publish,
  /// recovery) without counting a miss. Replaces any existing entry.
  void InsertData(SegmentId id, SegmentDataPtr data);
  void InsertIndex(SegmentId id, size_t field, IndexHandle index);

  /// Pinned segments are never evicted (either tier) until unpinned.
  void Pin(SegmentId id);
  void Unpin(SegmentId id);

  /// Drop all cached tiers of a segment (after merges/GC).
  void Invalidate(SegmentId id);
  /// Drop one field's cached index (republish at a new version).
  void InvalidateIndex(SegmentId id, size_t field);
  void Clear();

  Stats stats() const;

 private:
  struct Key {
    SegmentId id;
    uint32_t field;  // 0 for data entries.
    Tier tier;
    bool operator==(const Key& other) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      return std::hash<uint64_t>()(key.id * 1315423911u + key.field * 2654435761u +
                                   (key.tier == Tier::kIndex ? 0x9e3779b9u : 0u));
    }
  };
  struct Entry {
    std::shared_ptr<const void> blob;
    std::list<Key>::iterator lru_it;
    size_t bytes;
  };

  void InsertLocked(const Key& key, std::shared_ptr<const void> blob,
                    size_t bytes) VDB_REQUIRES(mu_);
  void EraseLocked(std::unordered_map<Key, Entry, KeyHash>::iterator it,
                   bool count_eviction) VDB_REQUIRES(mu_);
  /// Frees >= `needed` bytes if possible: pass 1 evicts unpinned index
  /// entries (LRU order), pass 2 unpinned data entries.
  void EvictForLocked(size_t needed) VDB_REQUIRES(mu_);
  void AddResidentLocked(Tier tier, double delta) VDB_REQUIRES(mu_);

  const size_t capacity_bytes_;
  mutable Mutex mu_{VDB_LOCK_RANK(kBufferPool)};
  Stats stats_ VDB_GUARDED_BY(mu_);
  std::list<Key> lru_ VDB_GUARDED_BY(mu_);  // Most recent at front.
  std::unordered_map<Key, Entry, KeyHash> cache_ VDB_GUARDED_BY(mu_);
  std::unordered_set<SegmentId> pinned_ VDB_GUARDED_BY(mu_);
};

using BufferPoolPtr = std::shared_ptr<BufferPool>;

}  // namespace storage
}  // namespace vectordb

#endif  // VECTORDB_STORAGE_BUFFER_POOL_H_
