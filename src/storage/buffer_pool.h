#ifndef VECTORDB_STORAGE_BUFFER_POOL_H_
#define VECTORDB_STORAGE_BUFFER_POOL_H_

#include <functional>
#include <list>
#include <unordered_map>

#include "common/mutex.h"
#include "storage/segment.h"

namespace vectordb {
namespace storage {

/// LRU buffer manager (Sec 2.4): the caching unit is a whole segment — the
/// basic searching unit — not a page. Misses invoke the supplied loader
/// (typically a FileSystem read + Segment::Deserialize), and eviction is by
/// total resident bytes.
class BufferPool {
 public:
  using Loader = std::function<Result<SegmentPtr>()>;

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t evictions = 0;
    size_t resident_bytes = 0;
    size_t resident_segments = 0;
  };

  explicit BufferPool(size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}
  ~BufferPool() { Clear(); }  // Releases this pool's share of the
                              // process-wide resident-bytes gauge.

  /// Get the segment, loading it on a miss. A segment larger than the whole
  /// pool is returned but not cached.
  Result<SegmentPtr> Fetch(SegmentId id, const Loader& loader);

  /// Drop a cached segment (after merges/GC).
  void Invalidate(SegmentId id);
  void Clear();

  Stats stats() const;

 private:
  void EvictLruLocked(size_t needed) VDB_REQUIRES(mu_);

  const size_t capacity_bytes_;
  mutable Mutex mu_;
  Stats stats_ VDB_GUARDED_BY(mu_);
  std::list<SegmentId> lru_ VDB_GUARDED_BY(mu_);  // Most recent at front.
  struct Entry {
    SegmentPtr segment;
    std::list<SegmentId>::iterator lru_it;
    size_t bytes;
  };
  std::unordered_map<SegmentId, Entry> cache_ VDB_GUARDED_BY(mu_);
};

}  // namespace storage
}  // namespace vectordb

#endif  // VECTORDB_STORAGE_BUFFER_POOL_H_
