#include "storage/object_store.h"

#include <chrono>
#include <thread>

namespace vectordb {
namespace storage {

void ObjectStoreFileSystem::Charge(size_t bytes) {
  const uint64_t micros =
      options_.op_latency_us +
      static_cast<uint64_t>(static_cast<double>(bytes) / options_.bandwidth *
                            1e6);
  stats_.simulated_micros.fetch_add(micros, std::memory_order_relaxed);
  if (options_.sleep_for_latency) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

Status ObjectStoreFileSystem::Write(const std::string& path,
                                    const std::string& data) {
  Charge(data.size());
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(data.size(), std::memory_order_relaxed);
  return inner_->Write(path, data);
}

Status ObjectStoreFileSystem::Read(const std::string& path,
                                   std::string* data) {
  Status status = inner_->Read(path, data);
  if (status.ok()) {
    Charge(data->size());
    stats_.reads.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_read.fetch_add(data->size(), std::memory_order_relaxed);
  }
  return status;
}

Status ObjectStoreFileSystem::Append(const std::string& path,
                                     const std::string& data) {
  // Object stores have no native append; model it as a PUT of the delta
  // (the inner store handles the read-modify-write).
  Charge(data.size());
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(data.size(), std::memory_order_relaxed);
  return inner_->Append(path, data);
}

Result<bool> ObjectStoreFileSystem::Exists(const std::string& path) {
  Charge(0);
  return inner_->Exists(path);
}

Status ObjectStoreFileSystem::Delete(const std::string& path) {
  Charge(0);
  return inner_->Delete(path);
}

Result<std::vector<std::string>> ObjectStoreFileSystem::List(
    const std::string& prefix) {
  Charge(0);
  return inner_->List(prefix);
}

}  // namespace storage
}  // namespace vectordb
