#include "storage/segment.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/logger.h"
#include "index/index_factory.h"

namespace vectordb {
namespace storage {

namespace {
constexpr uint32_t kSegmentMagic = 0x47455356;  // "VSEG"
// Format v1: spine + vector columns + inline per-field index blobs.
// Format v2: spine + vector columns only; indexes live in separate
// versioned artifacts (storage::SegmentStore).
constexpr uint32_t kSegmentVersionV1 = 1;
constexpr uint32_t kSegmentVersionV2 = 2;
}  // namespace

// ---------------------------------------------------------------- column --

void Segment::AttributeColumn::Build(
    std::vector<std::pair<double, RowId>> sorted_pairs,
    std::vector<double> by_position) {
  sorted_ = std::move(sorted_pairs);
  by_position_ = std::move(by_position);
  const size_t num_pages = (sorted_.size() + kPageSize - 1) / kPageSize;
  page_min_.resize(num_pages);
  page_max_.resize(num_pages);
  for (size_t p = 0; p < num_pages; ++p) {
    const size_t begin = p * kPageSize;
    const size_t end = std::min(begin + kPageSize, sorted_.size());
    page_min_[p] = sorted_[begin].first;
    page_max_[p] = sorted_[end - 1].first;
  }
}

void Segment::AttributeColumn::CollectInRange(
    double lo, double hi, std::vector<RowId>* out) const {
  for (size_t p = 0; p < page_min_.size(); ++p) {
    if (page_max_[p] < lo) continue;   // Page entirely below the range.
    if (page_min_[p] > hi) break;      // Pages are value-sorted: done.
    const size_t begin = p * kPageSize;
    const size_t end = std::min(begin + kPageSize, sorted_.size());
    // Binary-search within the first qualifying page; later pages start in
    // range until one exceeds hi.
    auto it = std::lower_bound(
        sorted_.begin() + begin, sorted_.begin() + end, lo,
        [](const std::pair<double, RowId>& e, double v) { return e.first < v; });
    for (; it != sorted_.begin() + end && it->first <= hi; ++it) {
      out->push_back(it->second);
    }
  }
}

size_t Segment::AttributeColumn::CountInRange(double lo, double hi) const {
  auto begin = std::lower_bound(
      sorted_.begin(), sorted_.end(), lo,
      [](const std::pair<double, RowId>& e, double v) { return e.first < v; });
  auto end = std::upper_bound(
      sorted_.begin(), sorted_.end(), hi,
      [](double v, const std::pair<double, RowId>& e) { return v < e.first; });
  return end > begin ? static_cast<size_t>(end - begin) : 0;
}

// --------------------------------------------------------------- segment --

std::optional<size_t> Segment::PositionOf(RowId row_id) const {
  auto it = std::lower_bound(row_ids_.begin(), row_ids_.end(), row_id);
  if (it == row_ids_.end() || *it != row_id) return std::nullopt;
  return static_cast<size_t>(it - row_ids_.begin());
}

std::optional<size_t> Segment::AttributeIndex(const std::string& name) const {
  for (size_t i = 0; i < schema_.attribute_names.size(); ++i) {
    if (schema_.attribute_names[i] == name) return i;
  }
  return std::nullopt;
}

// ------------------------------------------------------------- data tier --

Result<SegmentDataPtr> Segment::AcquireData(bool* loaded_now) const {
  MutexLock lock(&tier_mu_);
  if (data_pinned_ != nullptr) return data_pinned_;
  if (SegmentDataPtr alive = data_cached_.lock()) return alive;
  if (!data_loader_) {
    return Status::Internal(
        "segment data paged out and no data loader installed");
  }
  // Load under tier_mu_ so concurrent cold misses collapse into one IO.
  // Lock order is strictly tier_mu_ -> buffer pool: the pool never calls
  // back into the segment under its own lock.
  auto loaded = data_loader_();
  if (!loaded.ok()) return loaded.status();
  data_cached_ = loaded.value();
  if (loaded_now != nullptr) *loaded_now = true;
  return loaded;
}

bool Segment::DataResident() const {
  MutexLock lock(&tier_mu_);
  return data_pinned_ != nullptr || !data_cached_.expired();
}

void Segment::SetDataLoader(DataLoader loader) {
  MutexLock lock(&tier_mu_);
  data_loader_ = std::move(loader);
}

void Segment::MakeDataEvictable() {
  MutexLock lock(&tier_mu_);
  if (data_pinned_ == nullptr) return;
  if (!data_loader_) {
    VDB_WARN << "segment " << id_
             << ": MakeDataEvictable without a data loader; keeping pinned";
    return;
  }
  data_cached_ = data_pinned_;
  data_pinned_.reset();
}

SegmentDataPtr Segment::ResidentDataOrDie() const {
  MutexLock lock(&tier_mu_);
  if (data_pinned_ != nullptr) return data_pinned_;
  VDB_ERROR << "segment " << id_
            << ": raw vector accessor on evictable data tier; callers must "
               "hold an AcquireData() handle";
  std::abort();
}

// ------------------------------------------------------------ index tier --

void Segment::EnsureSlotsLocked(size_t field) const {
  if (slots_.size() <= field) slots_.resize(num_vector_fields());
}

Result<IndexHandle> Segment::AcquireIndex(size_t field,
                                          bool* loaded_now) const {
  MutexLock lock(&tier_mu_);
  if (field >= num_vector_fields()) return IndexHandle();
  EnsureSlotsLocked(field);
  IndexSlot& slot = slots_[field];
  if (slot.pinned != nullptr) return slot.pinned;
  if (IndexHandle alive = slot.cached.lock()) return alive;
  if (slot.version == 0 || !index_loader_) return IndexHandle();
  auto loaded = index_loader_(field, slot.version);
  if (!loaded.ok()) {
    if (loaded.status().IsCorruption()) {
      // Quarantine: forget the bad artifact so HasIndex() goes false and
      // the next out-of-band build republishes a fresh version.
      slot.version = 0;
      slot.cached.reset();
      slot.pinned.reset();
    }
    return loaded.status();
  }
  slot.cached = loaded.value();
  if (loaded_now != nullptr) *loaded_now = true;
  return loaded;
}

void Segment::SetIndex(size_t field, index::IndexPtr idx) {
  MutexLock lock(&tier_mu_);
  EnsureSlotsLocked(field);
  slots_[field].pinned = std::move(idx);
  slots_[field].cached.reset();
}

void Segment::PublishIndex(size_t field, uint64_t version, IndexHandle idx) {
  MutexLock lock(&tier_mu_);
  EnsureSlotsLocked(field);
  IndexSlot& slot = slots_[field];
  slot.version = version;
  slot.pinned.reset();
  slot.cached = std::move(idx);
}

void Segment::RestoreIndexVersion(size_t field, uint64_t version) {
  MutexLock lock(&tier_mu_);
  EnsureSlotsLocked(field);
  slots_[field].version = version;
}

std::vector<std::pair<uint32_t, uint64_t>> Segment::IndexEntries() const {
  MutexLock lock(&tier_mu_);
  std::vector<std::pair<uint32_t, uint64_t>> entries;
  for (size_t f = 0; f < slots_.size(); ++f) {
    if (slots_[f].version != 0) {
      entries.emplace_back(static_cast<uint32_t>(f), slots_[f].version);
    }
  }
  return entries;
}

bool Segment::HasIndex(size_t field) const {
  MutexLock lock(&tier_mu_);
  if (field >= slots_.size()) return false;
  return slots_[field].pinned != nullptr || slots_[field].version != 0;
}

uint64_t Segment::IndexVersion(size_t field) const {
  MutexLock lock(&tier_mu_);
  if (field >= slots_.size()) return 0;
  return slots_[field].version;
}

void Segment::SetIndexLoader(IndexLoader loader) {
  MutexLock lock(&tier_mu_);
  index_loader_ = std::move(loader);
}

// ------------------------------------------------------------- footprint --

size_t Segment::SpineBytes() const {
  size_t bytes = row_ids_.capacity() * sizeof(RowId);
  for (const auto& column : attributes_) {
    bytes += column.sorted_.capacity() * sizeof(std::pair<double, RowId>) +
             column.by_position_.capacity() * sizeof(double) +
             (column.page_min_.capacity() + column.page_max_.capacity()) *
                 sizeof(double);
  }
  return bytes;
}

size_t Segment::DataBytes() const {
  MutexLock lock(&tier_mu_);
  if (data_pinned_ != nullptr) return data_pinned_->bytes();
  if (SegmentDataPtr alive = data_cached_.lock()) return alive->bytes();
  return 0;
}

size_t Segment::IndexBytes() const {
  MutexLock lock(&tier_mu_);
  size_t bytes = 0;
  for (const auto& slot : slots_) {
    if (slot.pinned != nullptr) {
      bytes += slot.pinned->MemoryBytes();
    } else if (IndexHandle alive = slot.cached.lock()) {
      bytes += alive->MemoryBytes();
    }
  }
  return bytes;
}

size_t Segment::MemoryBytes() const {
  return SpineBytes() + DataBytes() + IndexBytes();
}

// --------------------------------------------------------- serialization --

Status Segment::SerializeData(std::string* out) const {
  auto data = AcquireData();
  if (!data.ok()) return data.status();
  const SegmentData& payload = *data.value();

  std::string body;
  BinaryWriter writer(&body);
  writer.PutU64(id_);
  writer.PutU64(schema_.vector_dims.size());
  for (size_t dim : schema_.vector_dims) writer.PutU64(dim);
  writer.PutU64(schema_.attribute_names.size());
  for (const auto& name : schema_.attribute_names) writer.PutString(name);
  writer.PutVector(row_ids_);
  for (size_t f = 0; f < payload.num_fields(); ++f) {
    writer.PutVector(payload.field(f));
  }
  for (const auto& column : attributes_) {
    // std::pair is not trivially copyable; split into parallel arrays.
    std::vector<double> values;
    std::vector<RowId> ids;
    values.reserve(column.sorted_.size());
    ids.reserve(column.sorted_.size());
    for (const auto& [value, row_id] : column.sorted_) {
      values.push_back(value);
      ids.push_back(row_id);
    }
    writer.PutVector(values);
    writer.PutVector(ids);
    writer.PutVector(column.by_position_);
  }

  BinaryWriter header(out);
  header.PutU32(kSegmentMagic);
  header.PutU32(kSegmentVersionV2);
  header.PutU32(Crc32(body));
  out->append(body);
  return Status::OK();
}

Result<SegmentPtr> Segment::DeserializeData(const std::string& in,
                                            bool load_v1_indexes) {
  BinaryReader reader(in);
  uint32_t magic, version, crc;
  if (!reader.GetU32(&magic) || magic != kSegmentMagic) {
    return Status::Corruption("bad segment magic");
  }
  if (!reader.GetU32(&version) ||
      (version != kSegmentVersionV1 && version != kSegmentVersionV2)) {
    return Status::Corruption("unsupported segment version");
  }
  if (!reader.GetU32(&crc)) return Status::Corruption("truncated segment");
  if (Crc32(in.data() + reader.position(), reader.Remaining()) != crc) {
    return Status::Corruption("segment checksum mismatch");
  }

  uint64_t id, num_fields, num_attrs;
  if (!reader.GetU64(&id) || !reader.GetU64(&num_fields)) {
    return Status::Corruption("truncated segment header");
  }
  SegmentSchema schema;
  schema.vector_dims.resize(num_fields);
  for (auto& dim : schema.vector_dims) {
    uint64_t d;
    if (!reader.GetU64(&d)) return Status::Corruption("truncated dims");
    dim = d;
  }
  if (!reader.GetU64(&num_attrs)) return Status::Corruption("truncated");
  schema.attribute_names.resize(num_attrs);
  for (auto& name : schema.attribute_names) {
    if (!reader.GetString(&name)) return Status::Corruption("truncated");
  }

  auto segment = std::make_shared<Segment>(id, schema);
  if (!reader.GetVector(&segment->row_ids_)) {
    return Status::Corruption("truncated row ids");
  }
  std::vector<std::vector<float>> fields(num_fields);
  for (auto& data : fields) {
    if (!reader.GetVector(&data)) {
      return Status::Corruption("truncated vector data");
    }
  }
  segment->attributes_.resize(num_attrs);
  for (auto& column : segment->attributes_) {
    std::vector<double> values;
    std::vector<RowId> ids;
    std::vector<double> by_position;
    if (!reader.GetVector(&values) || !reader.GetVector(&ids) ||
        !reader.GetVector(&by_position) || values.size() != ids.size()) {
      return Status::Corruption("truncated attribute column");
    }
    std::vector<std::pair<double, RowId>> sorted;
    sorted.reserve(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      sorted.emplace_back(values[i], ids[i]);
    }
    column.Build(std::move(sorted), std::move(by_position));
  }
  InitPinnedData(segment.get(), std::make_shared<const SegmentData>(
                                    schema.vector_dims, std::move(fields)));

  // v1 trailer: inline per-field index blobs (has_index, type, metric,
  // blob). Attached as pinned indexes — they have no durable artifact of
  // their own until the next out-of-band build republishes them.
  if (version == kSegmentVersionV1) {
    for (size_t f = 0; f < num_fields; ++f) {
      uint32_t has_index;
      if (!reader.GetU32(&has_index)) {
        return Status::Corruption("truncated index flag");
      }
      if (has_index == 0) continue;
      uint32_t type, metric;
      std::string blob;
      if (!reader.GetU32(&type) || !reader.GetU32(&metric) ||
          !reader.GetString(&blob)) {
        return Status::Corruption("truncated index blob");
      }
      if (!load_v1_indexes) continue;
      auto created = index::CreateIndex(static_cast<index::IndexType>(type),
                                        schema.vector_dims[f],
                                        static_cast<MetricType>(metric));
      if (!created.ok()) return created.status();
      index::IndexPtr idx = std::move(created).value();
      VDB_RETURN_NOT_OK(idx->Deserialize(blob));
      segment->SetIndex(f, std::move(idx));
    }
  }
  return segment;
}

Result<SegmentDataPtr> Segment::TakeDeserializedData(
    const std::shared_ptr<Segment>& segment) VDB_NO_THREAD_SAFETY_ANALYSIS {
  // Lock-free by design: `segment` came straight out of DeserializeData on
  // this thread, so tier_mu_ is uncontended and must not be taken (see the
  // declaration comment for the lock-rank rationale).
  if (segment == nullptr) {
    return Status::InvalidArgument("null deserialized segment");
  }
  if (segment->data_pinned_ == nullptr) {
    return Status::Internal("deserialized segment has no pinned data");
  }
  return segment->data_pinned_;
}

void Segment::InitPinnedData(Segment* segment, SegmentDataPtr data)
    VDB_NO_THREAD_SAFETY_ANALYSIS {
  // Lock-free by design — see the declaration comment: `segment` is still
  // private to this thread, and the caller may already hold a
  // kSegmentTier-ranked lock.
  segment->data_pinned_ = std::move(data);
}

// --------------------------------------------------------------- builder --

SegmentBuilder::SegmentBuilder(SegmentId id, SegmentSchema schema)
    : id_(id), schema_(std::move(schema)) {
  for (size_t dim : schema_.vector_dims) total_dim_ += dim;
}

Status SegmentBuilder::AddRow(RowId row_id,
                              const std::vector<const float*>& field_vectors,
                              const std::vector<double>& attribute_values) {
  if (field_vectors.size() != schema_.vector_dims.size()) {
    return Status::InvalidArgument("wrong number of vector fields");
  }
  if (attribute_values.size() != schema_.attribute_names.size()) {
    return Status::InvalidArgument("wrong number of attributes");
  }
  Row row;
  row.row_id = row_id;
  row.vectors.reserve(total_dim_);
  for (size_t f = 0; f < field_vectors.size(); ++f) {
    row.vectors.insert(row.vectors.end(), field_vectors[f],
                       field_vectors[f] + schema_.vector_dims[f]);
  }
  row.attributes = attribute_values;
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<SegmentPtr> SegmentBuilder::Finish() {
  std::sort(rows_.begin(), rows_.end(),
            [](const Row& a, const Row& b) { return a.row_id < b.row_id; });
  for (size_t i = 1; i < rows_.size(); ++i) {
    if (rows_[i].row_id == rows_[i - 1].row_id) {
      return Status::InvalidArgument("duplicate row id in segment");
    }
  }

  auto segment = std::make_shared<Segment>(id_, schema_);
  segment->row_ids_.reserve(rows_.size());
  for (const Row& row : rows_) segment->row_ids_.push_back(row.row_id);

  std::vector<std::vector<float>> fields(schema_.vector_dims.size());
  size_t field_offset = 0;
  for (size_t f = 0; f < schema_.vector_dims.size(); ++f) {
    const size_t dim = schema_.vector_dims[f];
    auto& data = fields[f];
    data.resize(rows_.size() * dim);
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::memcpy(data.data() + i * dim,
                  rows_[i].vectors.data() + field_offset, dim * sizeof(float));
    }
    field_offset += dim;
  }
  Segment::InitPinnedData(segment.get(),
                          std::make_shared<const SegmentData>(
                              schema_.vector_dims, std::move(fields)));

  segment->attributes_.resize(schema_.attribute_names.size());
  for (size_t a = 0; a < schema_.attribute_names.size(); ++a) {
    std::vector<std::pair<double, RowId>> sorted;
    std::vector<double> by_position;
    sorted.reserve(rows_.size());
    by_position.reserve(rows_.size());
    for (const Row& row : rows_) {
      sorted.emplace_back(row.attributes[a], row.row_id);
      by_position.push_back(row.attributes[a]);
    }
    std::sort(sorted.begin(), sorted.end());
    segment->attributes_[a].Build(std::move(sorted), std::move(by_position));
  }

  rows_.clear();
  return segment;
}

}  // namespace storage
}  // namespace vectordb
