#include <map>

#include "common/mutex.h"
#include "storage/filesystem.h"

namespace vectordb {
namespace storage {

namespace {

class MemoryFileSystem : public FileSystem {
 public:
  Status Write(const std::string& path, const std::string& data) override {
    MutexLock lock(&mu_);
    files_[path] = data;
    return Status::OK();
  }

  Status Read(const std::string& path, std::string* data) override {
    MutexLock lock(&mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound(path);
    *data = it->second;
    return Status::OK();
  }

  Status Append(const std::string& path, const std::string& data) override {
    MutexLock lock(&mu_);
    files_[path] += data;
    return Status::OK();
  }

  Result<bool> Exists(const std::string& path) override {
    MutexLock lock(&mu_);
    return files_.count(path) != 0;
  }

  Status Delete(const std::string& path) override {
    MutexLock lock(&mu_);
    if (files_.erase(path) == 0) return Status::NotFound(path);
    return Status::OK();
  }

  Result<std::vector<std::string>> List(const std::string& prefix) override {
    MutexLock lock(&mu_);
    std::vector<std::string> out;
    for (auto it = files_.lower_bound(prefix);
         it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      out.push_back(it->first);
    }
    return out;
  }

  std::string name() const override { return "memory"; }

 private:
  Mutex mu_{VDB_LOCK_RANK(kFsMemory)};
  std::map<std::string, std::string> files_ VDB_GUARDED_BY(mu_);
};

}  // namespace

FileSystemPtr NewMemoryFileSystem() {
  return std::make_shared<MemoryFileSystem>();
}

}  // namespace storage
}  // namespace vectordb
