#ifndef VECTORDB_STORAGE_SNAPSHOT_H_
#define VECTORDB_STORAGE_SNAPSHOT_H_

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/segment.h"

namespace vectordb {
namespace storage {

/// Deletion markers: row id → segment-id watermark. The physical copy of a
/// row inside a segment is deleted iff that segment's id is *below* the
/// watermark recorded at delete time. A later re-insert (update = delete +
/// insert, Sec 2.3) lands in a segment with a higher id and stays visible.
using TombstoneMap = std::unordered_map<RowId, SegmentId>;

/// An immutable view of the collection at one version (Sec 5.2): the set of
/// live segments plus the tombstones not yet compacted away. Queries pin
/// the snapshot current at arrival; later flushes/merges install *new*
/// snapshots and never mutate pinned ones.
struct Snapshot {
  uint64_t version = 0;
  std::vector<SegmentPtr> segments;
  /// Rows deleted but still physically present in some segment.
  std::shared_ptr<const TombstoneMap> tombstones;

  /// Is the copy of `row_id` living in segment `segment_id` deleted?
  bool IsDeleted(RowId row_id, SegmentId segment_id) const {
    if (tombstones == nullptr) return false;
    auto it = tombstones->find(row_id);
    return it != tombstones->end() && segment_id < it->second;
  }

  size_t TotalRows() const {
    size_t rows = 0;
    for (const auto& s : segments) rows += s->num_rows();
    return rows;
  }
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

/// Versioned snapshot chain with copy-on-write installs and reference-
/// counted garbage collection of dropped segments (Sec 5.2): a segment
/// leaves disk only when no live snapshot references it.
class SnapshotManager {
 public:
  SnapshotManager();

  /// Pin the current snapshot (cheap shared_ptr copy).
  SnapshotPtr Acquire() const;

  uint64_t current_version() const;

  /// Install a new version: copy the current snapshot, let `edit` mutate
  /// the copy, bump the version, swap it in. Segments dropped by the edit
  /// enter the GC pending list. Returns the new version.
  uint64_t Commit(const std::function<void(Snapshot*)>& edit);

  /// Called with the id of every segment whose last reference is gone
  /// (hook for file deletion and buffer-pool invalidation).
  void SetDropHandler(std::function<void(SegmentId)> handler);

  /// Reclaim dropped segments no longer referenced by any snapshot.
  /// Returns the number collected. (The paper runs this on a background
  /// thread; DbOptions wires it to the background executor.)
  size_t CollectGarbage();

  /// Number of segments awaiting GC (for tests).
  size_t pending_gc() const;

 private:
  mutable std::mutex mu_;
  SnapshotPtr current_;
  std::vector<SegmentPtr> pending_gc_;
  std::function<void(SegmentId)> drop_handler_;
};

}  // namespace storage
}  // namespace vectordb

#endif  // VECTORDB_STORAGE_SNAPSHOT_H_
