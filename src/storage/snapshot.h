#ifndef VECTORDB_STORAGE_SNAPSHOT_H_
#define VECTORDB_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "storage/segment.h"

namespace vectordb {
namespace storage {

/// Per-snapshot cache of execution-layer segment views (the exec layer's
/// SegmentView: tombstone allow-bitset + dispatch decision, computed once
/// per (snapshot, segment) pair no matter how many queries run against the
/// snapshot). Values are type-erased so storage does not depend on exec;
/// the exec layer casts back to its concrete view type.
///
/// The builder runs under the cache lock, guaranteeing exactly-once
/// construction per segment even when many queries race on a cold cache.
class SegmentViewCache {
 public:
  using ViewPtr = std::shared_ptr<const void>;
  using Builder = std::function<ViewPtr()>;

  /// Return the cached view for `id`, building it via `builder` on a miss.
  /// `*built` reports whether this call constructed the view.
  ViewPtr GetOrCreate(SegmentId id, const Builder& builder, bool* built) {
    MutexLock lock(&mu_);
    auto it = views_.find(id);
    if (it != views_.end()) {
      if (built != nullptr) *built = false;
      return it->second;
    }
    ViewPtr view = builder();
    ++builds_;
    views_.emplace(id, view);
    if (built != nullptr) *built = true;
    return view;
  }

  /// Total views ever built by this cache (test hook: asserting that N
  /// queries against one snapshot build at most one view per segment).
  uint64_t builds() const {
    MutexLock lock(&mu_);
    return builds_;
  }

 private:
  mutable Mutex mu_{VDB_LOCK_RANK(kSegmentViewCache)};
  std::unordered_map<SegmentId, ViewPtr> views_ VDB_GUARDED_BY(mu_);
  uint64_t builds_ VDB_GUARDED_BY(mu_) = 0;
};

/// Deletion markers: row id → segment-id watermark. The physical copy of a
/// row inside a segment is deleted iff that segment's id is *below* the
/// watermark recorded at delete time. A later re-insert (update = delete +
/// insert, Sec 2.3) lands in a segment with a higher id and stays visible.
using TombstoneMap = std::unordered_map<RowId, SegmentId>;

/// An immutable view of the collection at one version (Sec 5.2): the set of
/// live segments plus the tombstones not yet compacted away. Queries pin
/// the snapshot current at arrival; later flushes/merges install *new*
/// snapshots and never mutate pinned ones.
struct Snapshot {
  uint64_t version = 0;
  std::vector<SegmentPtr> segments;
  /// Rows deleted but still physically present in some segment.
  std::shared_ptr<const TombstoneMap> tombstones;
  /// Visible rows across all segments (TotalRows minus tombstoned copies),
  /// maintained incrementally by the commit edits in the db layer so
  /// NumLiveRows is O(1) instead of O(rows × map lookups).
  size_t live_rows = 0;
  /// Lazily-populated exec-layer views; every snapshot version gets a fresh
  /// cache (SnapshotManager::Commit resets it on the copy).
  std::shared_ptr<SegmentViewCache> view_cache =
      std::make_shared<SegmentViewCache>();

  /// Is the copy of `row_id` living in segment `segment_id` deleted?
  bool IsDeleted(RowId row_id, SegmentId segment_id) const {
    if (tombstones == nullptr) return false;
    auto it = tombstones->find(row_id);
    return it != tombstones->end() && segment_id < it->second;
  }

  size_t TotalRows() const {
    size_t rows = 0;
    for (const auto& s : segments) rows += s->num_rows();
    return rows;
  }

  /// The segment holding the visible copy of `row_id` (and its position),
  /// or nullptr when the row is absent or fully tombstoned.
  const Segment* FindLive(RowId row_id, size_t* position) const;

  /// Number of currently-visible physical copies of `row_id` (counts
  /// duplicate positions within one segment too, matching what a full
  /// scan would see). Used to maintain live_rows across deletes.
  size_t CountVisibleCopies(RowId row_id) const;

  /// O(rows) recount of live_rows — the recovery seed and the debug-assert
  /// path behind the incremental counter.
  size_t CountLiveRowsSlow() const;
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

/// Versioned snapshot chain with copy-on-write installs and reference-
/// counted garbage collection of dropped segments (Sec 5.2): a segment
/// leaves disk only when no live snapshot references it.
class SnapshotManager {
 public:
  SnapshotManager();

  /// Pin the current snapshot (cheap shared_ptr copy).
  SnapshotPtr Acquire() const;

  uint64_t current_version() const;

  /// Install a new version: copy the current snapshot, let `edit` mutate
  /// the copy, bump the version, swap it in. Segments dropped by the edit
  /// enter the GC pending list. Returns the new version.
  uint64_t Commit(const std::function<void(Snapshot*)>& edit);

  /// Called with the id of every segment whose last reference is gone
  /// (hook for file deletion and buffer-pool invalidation).
  void SetDropHandler(std::function<void(SegmentId)> handler);

  /// Reclaim dropped segments no longer referenced by any snapshot.
  /// Returns the number collected. (The paper runs this on a background
  /// thread; DbOptions wires it to the background executor.)
  size_t CollectGarbage();

  /// Number of segments awaiting GC (for tests).
  size_t pending_gc() const;

 private:
  mutable Mutex mu_{VDB_LOCK_RANK(kSnapshotManager)};
  SnapshotPtr current_ VDB_GUARDED_BY(mu_);
  std::vector<SegmentPtr> pending_gc_ VDB_GUARDED_BY(mu_);
  std::function<void(SegmentId)> drop_handler_ VDB_GUARDED_BY(mu_);
};

}  // namespace storage
}  // namespace vectordb

#endif  // VECTORDB_STORAGE_SNAPSHOT_H_
