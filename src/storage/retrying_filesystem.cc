#include "storage/retrying_filesystem.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "obs/catalog.h"

namespace vectordb {
namespace storage {

uint64_t RetryingFileSystem::NextBackoffMicros(size_t attempt) {
  const double base =
      static_cast<double>(options_.initial_backoff_us) *
      std::pow(options_.backoff_multiplier, static_cast<double>(attempt - 1));
  double factor = 1.0;
  if (options_.jitter > 0.0) {
    MutexLock lock(&rng_mu_);
    factor = 1.0 - options_.jitter + 2.0 * options_.jitter * rng_.NextDouble();
  }
  const double capped =
      std::min(base, static_cast<double>(options_.max_backoff_us));
  return static_cast<uint64_t>(capped * factor);
}

template <typename Op>
Status RetryingFileSystem::RunWithRetries(const Op& op) {
  stats_.operations.fetch_add(1, std::memory_order_relaxed);
  Status status;
  for (size_t attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    stats_.attempts.fetch_add(1, std::memory_order_relaxed);
    obs::Storage().retry_attempts->Inc();
    status = op();
    if (status.ok()) return status;
    if (!status.IsTransient()) {
      stats_.permanent_failures.fetch_add(1, std::memory_order_relaxed);
      return status;
    }
    if (attempt == options_.max_attempts) break;
    stats_.retries.fetch_add(1, std::memory_order_relaxed);
    obs::Storage().retry_retries->Inc();
    const uint64_t backoff = NextBackoffMicros(attempt);
    stats_.backoff_micros.fetch_add(backoff, std::memory_order_relaxed);
    if (options_.sleep_for_backoff) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    }
  }
  stats_.exhausted.fetch_add(1, std::memory_order_relaxed);
  obs::Storage().retry_exhausted->Inc();
  return status;
}

Status RetryingFileSystem::Write(const std::string& path,
                                 const std::string& data) {
  return RunWithRetries([&] { return inner_->Write(path, data); });
}

Status RetryingFileSystem::Read(const std::string& path, std::string* data) {
  return RunWithRetries([&] { return inner_->Read(path, data); });
}

Status RetryingFileSystem::Append(const std::string& path,
                                  const std::string& data) {
  // Safe to retry because transient failures never apply partial bytes;
  // partial appends surface as kCorruption, which is not retried.
  return RunWithRetries([&] { return inner_->Append(path, data); });
}

Result<bool> RetryingFileSystem::Exists(const std::string& path) {
  bool exists = false;
  Status status = RunWithRetries([&]() -> Status {
    auto result = inner_->Exists(path);
    if (!result.ok()) return result.status();
    exists = result.value();
    return Status::OK();
  });
  if (!status.ok()) return status;
  return exists;
}

Status RetryingFileSystem::Delete(const std::string& path) {
  return RunWithRetries([&] { return inner_->Delete(path); });
}

Result<std::vector<std::string>> RetryingFileSystem::List(
    const std::string& prefix) {
  std::vector<std::string> out;
  Status status = RunWithRetries([&]() -> Status {
    auto result = inner_->List(prefix);
    if (!result.ok()) return result.status();
    out = std::move(result).value();
    return Status::OK();
  });
  if (!status.ok()) return status;
  return out;
}

}  // namespace storage
}  // namespace vectordb
