#ifndef VECTORDB_STORAGE_FAULT_INJECTION_H_
#define VECTORDB_STORAGE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "storage/filesystem.h"

namespace vectordb {
namespace storage {

/// Bitmask of FileSystem operations a fault rule matches.
enum FaultOp : uint32_t {
  kOpRead = 1u << 0,
  kOpWrite = 1u << 1,
  kOpAppend = 1u << 2,
  kOpExists = 1u << 3,
  kOpDelete = 1u << 4,
  kOpList = 1u << 5,
  kOpAll = 0x3F,
};

/// What happens when a rule fires.
enum class FaultEffect {
  /// Status::Unavailable; the operation is NOT applied to the inner store.
  kTransient,
  /// Status::IOError; the operation is NOT applied. Like kTransient this is
  /// retry-safe: no bytes reach the inner store.
  kIOError,
  /// Status::Corruption; the operation is NOT applied. Permanent by the
  /// Status::IsTransient() classification — retry layers must give up.
  kCorruption,
  /// The operation IS applied but with one bit of the payload flipped
  /// (writes/appends corrupt what lands on storage; reads corrupt what the
  /// caller sees while storage stays intact). Returns OK — silent corruption.
  kBitFlip,
  /// Append only: a prefix of the data reaches the inner store, then the
  /// call fails with Status::Corruption (a crash mid-append leaves a torn
  /// frame; retrying would stack a duplicate after unreadable garbage, so
  /// the status is classified permanent).
  kTornAppend,
  /// Process-death simulation: all un-synced appended bytes are dropped,
  /// the store enters the crashed state (every op fails Unavailable) until
  /// Restart() is called, and this op fails Unavailable.
  kCrash,
};

/// One programmable fault. A rule counts the operations it matches
/// (op-type bitmask + path prefix) and fires either on the exact `nth`
/// match (1-based, deterministic) or per-match with `probability` drawn
/// from the injector's seeded RNG (reproducible given a fixed seed and op
/// sequence). `max_triggers` bounds how many times it can fire in total.
struct FaultRule {
  uint32_t ops = kOpAll;
  std::string path_prefix;  ///< Empty matches every path.
  FaultEffect effect = FaultEffect::kTransient;
  /// If > 0, fire on exactly the nth matching op; else use `probability`.
  size_t nth = 0;
  double probability = 1.0;
  size_t max_triggers = SIZE_MAX;
  /// kTornAppend: fraction of the appended bytes that land before the tear.
  double torn_fraction = 0.5;
  /// kBitFlip: which bit of the payload to flip (wrapped modulo size).
  size_t flip_bit = 7;
  std::string message = "injected fault";
};

/// Injection counters, by effect.
struct FaultStats {
  std::atomic<size_t> ops_seen{0};
  std::atomic<size_t> faults_injected{0};
  std::atomic<size_t> transient{0};
  std::atomic<size_t> io_errors{0};
  std::atomic<size_t> corruptions{0};
  std::atomic<size_t> bit_flips{0};
  std::atomic<size_t> torn_appends{0};
  std::atomic<size_t> crashes{0};
};

/// FileSystem decorator that injects storage faults according to a
/// programmable, seeded plan (same decorator shape as ObjectStoreFileSystem,
/// so it stacks under or over the simulated S3 layer). All randomness comes
/// from one seeded RNG: a fixed seed plus a fixed operation sequence yields
/// a bit-identical fault sequence, which is what makes the recovery tests
/// deterministic.
///
/// Crash-point model: with `set_track_unsynced_appends(true)`, bytes that
/// reach the store via Append are considered volatile (page cache) until
/// SyncAll() is called. Crash() atomically truncates every file back to its
/// last synced length — simulating process death mid-write — and fails all
/// subsequent operations until Restart(). By default appends are durable on
/// acknowledgement, matching the WAL's contract.
class FaultInjectionFileSystem : public FileSystem {
 public:
  explicit FaultInjectionFileSystem(FileSystemPtr inner, uint64_t seed = 42)
      : inner_(std::move(inner)), rng_(seed) {}

  /// Install a rule; returns its id. Rules are evaluated in insertion
  /// order and the first one that fires wins.
  size_t AddRule(const FaultRule& rule);
  void RemoveRule(size_t id);
  void ClearRules();

  /// How many times rule `id` has fired so far.
  size_t TriggerCount(size_t id) const;

  // ----- crash-point controls -----

  void set_track_unsynced_appends(bool on);
  /// Mark all appended bytes durable (fsync barrier).
  void SyncAll();
  /// Drop un-synced appends and enter the crashed state.
  Status Crash();
  /// Leave the crashed state (the replacement process attaches).
  void Restart();
  bool crashed() const;

  const FaultStats& stats() const { return stats_; }

  // ----- FileSystem -----

  Status Write(const std::string& path, const std::string& data) override;
  Status Read(const std::string& path, std::string* data) override;
  Status Append(const std::string& path, const std::string& data) override;
  Result<bool> Exists(const std::string& path) override;
  Status Delete(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;
  std::string name() const override {
    return "faulty(" + inner_->name() + ")";
  }

 private:
  struct RuleState {
    FaultRule rule;
    size_t matches = 0;
    size_t triggers = 0;
    bool removed = false;
  };

  struct Firing {
    bool fired = false;
    FaultEffect effect = FaultEffect::kTransient;
    FaultRule rule;
  };

  /// Evaluate the rule list for one operation; updates match/trigger
  /// counters and consumes RNG draws for probabilistic rules.
  Firing EvaluateLocked(uint32_t op, const std::string& path)
      VDB_REQUIRES(mu_);
  Status CrashLocked() VDB_REQUIRES(mu_);
  static void FlipBit(std::string* data, size_t bit);

  FileSystemPtr inner_;
  mutable Mutex mu_{VDB_LOCK_RANK(kFsFaultInjection)};
  Rng rng_ VDB_GUARDED_BY(mu_);
  std::vector<RuleState> rules_ VDB_GUARDED_BY(mu_);
  bool crashed_ VDB_GUARDED_BY(mu_) = false;
  bool track_unsynced_ VDB_GUARDED_BY(mu_) = false;
  /// path -> appended-but-unsynced byte count.
  std::map<std::string, size_t> unsynced_bytes_ VDB_GUARDED_BY(mu_);
  FaultStats stats_;  ///< Atomic counters; no lock needed.
};

}  // namespace storage
}  // namespace vectordb

#endif  // VECTORDB_STORAGE_FAULT_INJECTION_H_
