#include "storage/wal.h"

#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/logger.h"
#include "obs/catalog.h"

namespace vectordb {
namespace storage {

namespace {

// On-disk record framing: [u32 body_len][u32 crc][body]; body is the
// BinaryWriter encoding of (lsn, type, collection, payload).
std::string EncodeBody(const WalRecord& record) {
  std::string body;
  BinaryWriter writer(&body);
  writer.PutU64(record.lsn);
  writer.PutU32(static_cast<uint32_t>(record.type));
  writer.PutString(record.collection);
  writer.PutString(record.payload);
  return body;
}

bool DecodeBody(const std::string& body, WalRecord* record) {
  BinaryReader reader(body);
  uint32_t type;
  if (!reader.GetU64(&record->lsn) || !reader.GetU32(&type) ||
      !reader.GetString(&record->collection) ||
      !reader.GetString(&record->payload)) {
    return false;
  }
  record->type = static_cast<WalOpType>(type);
  return true;
}

}  // namespace

Status WriteAheadLog::RecoverLsnLocked() {
  if (recovered_) return Status::OK();
  recovered_ = true;
  std::string data;
  Status status = fs_->Read(path_, &data);
  if (status.IsNotFound()) return Status::OK();
  VDB_RETURN_NOT_OK(status);
  BinaryReader reader(data);
  size_t valid_end = 0;  // Byte offset just past the last intact record.
  while (reader.Remaining() >= 8) {
    uint32_t len, crc;
    if (!reader.GetU32(&len) || !reader.GetU32(&crc)) break;
    std::string body(len, '\0');
    if (!reader.GetBytes(body.data(), len)) break;
    if (Crc32(body) != crc) break;
    WalRecord record;
    if (!DecodeBody(body, &record)) break;
    next_lsn_ = record.lsn + 1;
    valid_end = data.size() - reader.Remaining();
  }
  if (valid_end < data.size()) {
    // Torn/corrupt tail from a crash mid-append: truncate it so new
    // appends are not buried behind unreadable garbage.
    VDB_RETURN_NOT_OK(fs_->Write(path_, data.substr(0, valid_end)));
  }
  return Status::OK();
}

Status WriteAheadLog::Append(WalRecord* record) {
  MutexLock lock(&mu_);
  VDB_RETURN_NOT_OK(RecoverLsnLocked());
  record->lsn = next_lsn_++;
  const std::string body = EncodeBody(*record);
  std::string frame;
  BinaryWriter writer(&frame);
  writer.PutU32(static_cast<uint32_t>(body.size()));
  writer.PutU32(Crc32(body));
  frame += body;
  const Status status = fs_->Append(path_, frame);
  if (status.ok()) {
    obs::StorageMetrics& m = obs::Storage();
    m.wal_appends->Inc();
    m.wal_append_bytes->Inc(frame.size());
    // Every append is written through before acknowledgement (Sec 5.1), so
    // one append == one durable sync against the backing filesystem.
    m.wal_fsyncs->Inc();
  }
  return status;
}

Status WriteAheadLog::Replay(
    const std::function<Status(const WalRecord&)>& callback) const {
  return ReplayFrom(0, callback);
}

Status WriteAheadLog::ReplayFrom(
    uint64_t after_lsn,
    const std::function<Status(const WalRecord&)>& callback) const {
  std::string data;
  Status status = fs_->Read(path_, &data);
  if (status.IsNotFound()) return Status::OK();  // Empty log.
  VDB_RETURN_NOT_OK(status);

  BinaryReader reader(data);
  while (reader.Remaining() >= 8) {
    uint32_t len, crc;
    if (!reader.GetU32(&len) || !reader.GetU32(&crc)) break;
    std::string body(len, '\0');
    if (!reader.GetBytes(body.data(), len)) {
      // Torn tail write: stop replay cleanly.
      break;
    }
    if (Crc32(body) != crc) break;
    WalRecord record;
    if (!DecodeBody(body, &record)) {
      return Status::Corruption("undecodable WAL record");
    }
    if (record.lsn > after_lsn) {
      VDB_RETURN_NOT_OK(callback(record));
    }
  }
  return Status::OK();
}

Status WriteAheadLog::Reset() {
  MutexLock lock(&mu_);
  obs::Storage().wal_resets->Inc();
  Status status = fs_->Delete(path_);
  if (status.IsNotFound()) return Status::OK();
  return status;
}

uint64_t WriteAheadLog::last_lsn() {
  MutexLock lock(&mu_);
  const Status status = RecoverLsnLocked();
  if (!status.ok()) {
    // Recovery failures surface on the Append/Replay paths; this accessor
    // reports whatever LSN state is known so far.
    VDB_WARN << "WAL lsn recovery failed: " << status.ToString();
  }
  return next_lsn_ - 1;
}

}  // namespace storage
}  // namespace vectordb
