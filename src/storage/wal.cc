#include "storage/wal.h"

#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/logger.h"
#include "obs/catalog.h"

namespace vectordb {
namespace storage {

// Append() and Recover() write/read through the virtual FileSystem while
// holding mu_ — a path the static analyzer cannot trace through the
// interface, so the order is declared.
VDB_ACQUIRED_BEFORE(kWal, kFsMemory);

namespace {

// On-disk record framing: [u32 body_len][u32 crc][body]; body is the
// BinaryWriter encoding of (lsn, type, collection, payload).
std::string EncodeBody(const WalRecord& record) {
  std::string body;
  BinaryWriter writer(&body);
  writer.PutU64(record.lsn);
  writer.PutU32(static_cast<uint32_t>(record.type));
  writer.PutString(record.collection);
  writer.PutString(record.payload);
  return body;
}

bool DecodeBody(const std::string& body, WalRecord* record) {
  BinaryReader reader(body);
  uint32_t type;
  if (!reader.GetU64(&record->lsn) || !reader.GetU32(&type) ||
      !reader.GetString(&record->collection) ||
      !reader.GetString(&record->payload)) {
    return false;
  }
  record->type = static_cast<WalOpType>(type);
  return true;
}

/// Read `path` until two consecutive attempts agree. Recovery must
/// distinguish a *torn tail on storage* (truncate it) from a *transiently
/// corrupted read* of intact storage (bit flip on the wire): acting on a
/// single corrupted read would truncate acked records or silently cut a
/// replay short. A flipped read cannot plausibly repeat bit-identically, so
/// agreement of two reads pins down what is really on storage. Storage that
/// keeps disagreeing with itself falls through with the last view.
Status StableRead(FileSystem* fs, const std::string& path, std::string* data) {
  VDB_RETURN_NOT_OK(fs->Read(path, data));
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::string confirm;
    VDB_RETURN_NOT_OK(fs->Read(path, &confirm));
    if (confirm == *data) return Status::OK();
    *data = std::move(confirm);
  }
  return Status::OK();
}

}  // namespace

Status WriteAheadLog::RecoverLsnLocked() {
  if (recovered_) return Status::OK();
  std::string data;
  Status status = StableRead(fs_.get(), path_, &data);
  if (status.IsNotFound()) {
    recovered_ = true;
    return Status::OK();
  }
  if (!status.ok()) {
    // Stay unrecovered: acting on an unknown LSN state could hand out
    // duplicate LSNs; the next Append retries recovery first.
    return status;
  }
  recovered_ = true;
  BinaryReader reader(data);
  size_t valid_end = 0;  // Byte offset just past the last intact record.
  while (reader.Remaining() >= 8) {
    uint32_t len, crc;
    if (!reader.GetU32(&len) || !reader.GetU32(&crc)) break;
    std::string body(len, '\0');
    if (!reader.GetBytes(body.data(), len)) break;
    if (Crc32(body) != crc) break;
    WalRecord record;
    if (!DecodeBody(body, &record)) break;
    next_lsn_ = record.lsn + 1;
    valid_end = data.size() - reader.Remaining();
  }
  if (valid_end < data.size()) {
    // Torn/corrupt tail from a crash mid-append: truncate it so new
    // appends are not buried behind unreadable garbage.
    VDB_RETURN_NOT_OK(fs_->Write(path_, data.substr(0, valid_end)));
  }
  return Status::OK();
}

Status WriteAheadLog::Append(WalRecord* record) {
  MutexLock lock(&mu_);
  VDB_RETURN_NOT_OK(RecoverLsnLocked());
  record->lsn = next_lsn_++;
  const std::string body = EncodeBody(*record);
  std::string frame;
  BinaryWriter writer(&frame);
  writer.PutU32(static_cast<uint32_t>(body.size()));
  writer.PutU32(Crc32(body));
  frame += body;
  const Status status = fs_->Append(path_, frame);
  if (status.ok()) {
    obs::StorageMetrics& m = obs::Storage();
    m.wal_appends->Inc();
    m.wal_append_bytes->Inc(frame.size());
    // Every append is written through before acknowledgement (Sec 5.1), so
    // one append == one durable sync against the backing filesystem.
    m.wal_fsyncs->Inc();
  } else if (!status.IsTransient()) {
    // A torn append may have left a partial frame on storage. Heal the tail
    // NOW, before the next append is acknowledged: a later record written
    // behind the garbage would survive the fs but be silently dropped by
    // the truncating recovery scan — an acked-write loss. If healing itself
    // fails, stay unrecovered so the next Append retries it first.
    recovered_ = false;
    const Status healed = RecoverLsnLocked();
    if (!healed.ok()) {
      recovered_ = false;
      VDB_WARN << "WAL tail heal after failed append: " << healed.ToString();
    }
  }
  return status;
}

Status WriteAheadLog::Replay(
    const std::function<Status(const WalRecord&)>& callback) const {
  return ReplayFrom(0, callback);
}

Status WriteAheadLog::ReplayFrom(
    uint64_t after_lsn,
    const std::function<Status(const WalRecord&)>& callback) const {
  std::string data;
  Status status = StableRead(fs_.get(), path_, &data);
  if (status.IsNotFound()) return Status::OK();  // Empty log.
  VDB_RETURN_NOT_OK(status);

  BinaryReader reader(data);
  while (reader.Remaining() >= 8) {
    uint32_t len, crc;
    if (!reader.GetU32(&len) || !reader.GetU32(&crc)) break;
    std::string body(len, '\0');
    if (!reader.GetBytes(body.data(), len)) {
      // Torn tail write: stop replay cleanly.
      break;
    }
    if (Crc32(body) != crc) break;
    WalRecord record;
    if (!DecodeBody(body, &record)) {
      return Status::Corruption("undecodable WAL record");
    }
    if (record.lsn > after_lsn) {
      VDB_RETURN_NOT_OK(callback(record));
    }
  }
  return Status::OK();
}

Status WriteAheadLog::Reset() {
  MutexLock lock(&mu_);
  obs::Storage().wal_resets->Inc();
  Status status = fs_->Delete(path_);
  if (status.IsNotFound()) return Status::OK();
  return status;
}

uint64_t WriteAheadLog::last_lsn() {
  MutexLock lock(&mu_);
  const Status status = RecoverLsnLocked();
  if (!status.ok()) {
    // Recovery failures surface on the Append/Replay paths; this accessor
    // reports whatever LSN state is known so far.
    VDB_WARN << "WAL lsn recovery failed: " << status.ToString();
  }
  return next_lsn_ - 1;
}

}  // namespace storage
}  // namespace vectordb
