#ifndef VECTORDB_STORAGE_FILESYSTEM_H_
#define VECTORDB_STORAGE_FILESYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace vectordb {
namespace storage {

/// Storage backend abstraction (Sec 2.4 "multi-storage"): Milvus runs on
/// local file systems, Amazon S3, and HDFS. The interface is deliberately
/// object-store-shaped — whole-object reads/writes plus an append used by
/// the WAL — so the same code paths serve both POSIX files and the
/// simulated S3 backend.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Create/overwrite `path` with `data` (atomic at object granularity).
  virtual Status Write(const std::string& path, const std::string& data) = 0;

  /// Read the whole object into `data`.
  virtual Status Read(const std::string& path, std::string* data) = 0;

  /// Append `data` to `path`, creating it if absent.
  virtual Status Append(const std::string& path, const std::string& data) = 0;

  virtual Result<bool> Exists(const std::string& path) = 0;
  virtual Status Delete(const std::string& path) = 0;

  /// Paths that start with `prefix`, sorted.
  virtual Result<std::vector<std::string>> List(const std::string& prefix) = 0;

  virtual std::string name() const = 0;
};

using FileSystemPtr = std::shared_ptr<FileSystem>;

/// POSIX-backed implementation rooted at a directory.
FileSystemPtr NewLocalFileSystem(const std::string& root);

/// Purely in-memory implementation (tests, ephemeral nodes).
FileSystemPtr NewMemoryFileSystem();

}  // namespace storage
}  // namespace vectordb

#endif  // VECTORDB_STORAGE_FILESYSTEM_H_
