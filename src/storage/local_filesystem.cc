#include <algorithm>
#include <filesystem>
#include <fstream>

#include "storage/filesystem.h"

namespace vectordb {
namespace storage {

namespace {

namespace fs = std::filesystem;

/// POSIX implementation. Object paths map to files under `root_`; slashes
/// in object names become directories.
class LocalFileSystem : public FileSystem {
 public:
  explicit LocalFileSystem(std::string root) : root_(std::move(root)) {
    std::error_code ec;
    fs::create_directories(root_, ec);
  }

  Status Write(const std::string& path, const std::string& data) override {
    const fs::path full = Resolve(path);
    std::error_code ec;
    fs::create_directories(full.parent_path(), ec);
    // Write-then-rename for object-granularity atomicity.
    const fs::path tmp = full.string() + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return Status::IOError("cannot open for write: " + path);
      out.write(data.data(), static_cast<std::streamsize>(data.size()));
      if (!out) return Status::IOError("short write: " + path);
    }
    fs::rename(tmp, full, ec);
    if (ec) return Status::IOError("rename failed: " + path);
    return Status::OK();
  }

  Status Read(const std::string& path, std::string* data) override {
    const fs::path full = Resolve(path);
    std::ifstream in(full, std::ios::binary | std::ios::ate);
    if (!in) return Status::NotFound(path);
    const std::streamsize size = in.tellg();
    in.seekg(0);
    data->resize(static_cast<size_t>(size));
    in.read(data->data(), size);
    if (!in) return Status::IOError("short read: " + path);
    return Status::OK();
  }

  Status Append(const std::string& path, const std::string& data) override {
    const fs::path full = Resolve(path);
    std::error_code ec;
    fs::create_directories(full.parent_path(), ec);
    std::ofstream out(full, std::ios::binary | std::ios::app);
    if (!out) return Status::IOError("cannot open for append: " + path);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) return Status::IOError("short append: " + path);
    return Status::OK();
  }

  Result<bool> Exists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(Resolve(path), ec);
  }

  Status Delete(const std::string& path) override {
    std::error_code ec;
    if (!fs::remove(Resolve(path), ec)) return Status::NotFound(path);
    return Status::OK();
  }

  Result<std::vector<std::string>> List(const std::string& prefix) override {
    std::vector<std::string> out;
    std::error_code ec;
    const fs::path root(root_);
    if (!fs::exists(root, ec)) return out;
    for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
      if (!entry.is_regular_file()) continue;
      std::string rel = fs::relative(entry.path(), root, ec).generic_string();
      if (rel.compare(0, prefix.size(), prefix) == 0) {
        out.push_back(std::move(rel));
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::string name() const override { return "local:" + root_; }

 private:
  fs::path Resolve(const std::string& path) const {
    return fs::path(root_) / path;
  }

  std::string root_;
};

}  // namespace

FileSystemPtr NewLocalFileSystem(const std::string& root) {
  return std::make_shared<LocalFileSystem>(root);
}

}  // namespace storage
}  // namespace vectordb
