#ifndef VECTORDB_STORAGE_RETRYING_FILESYSTEM_H_
#define VECTORDB_STORAGE_RETRYING_FILESYSTEM_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/mutex.h"
#include "common/rng.h"
#include "storage/filesystem.h"

namespace vectordb {
namespace storage {

/// Backoff policy for RetryingFileSystem.
struct RetryOptions {
  /// Total tries per operation (1 = no retries).
  size_t max_attempts = 4;
  /// Backoff before retry i is initial * multiplier^(i-1), capped.
  uint64_t initial_backoff_us = 1000;
  double backoff_multiplier = 2.0;
  uint64_t max_backoff_us = 100000;
  /// Uniform jitter: each backoff is scaled by a factor drawn from
  /// [1 - jitter, 1 + jitter] using the seeded RNG.
  double jitter = 0.25;
  uint64_t seed = 42;
  /// When false (default) backoff is only *accounted* in the stats, not
  /// slept — tests stay fast while still asserting the schedule. When true
  /// the calling thread really sleeps.
  bool sleep_for_backoff = false;
};

/// Per-op retry accounting.
struct RetryStats {
  std::atomic<size_t> operations{0};
  std::atomic<size_t> attempts{0};
  std::atomic<size_t> retries{0};
  /// Transient failures that survived every attempt.
  std::atomic<size_t> exhausted{0};
  /// Non-transient failures returned without any retry.
  std::atomic<size_t> permanent_failures{0};
  std::atomic<uint64_t> backoff_micros{0};
};

/// FileSystem decorator that retries transient failures (per
/// Status::IsTransient(): kUnavailable, kIOError, kResourceExhausted) with
/// bounded exponential backoff + jitter. Permanent failures — kCorruption,
/// kNotFound, argument errors — are returned immediately: retrying an op
/// whose bytes are already corrupt can only make things worse (a torn
/// append retried would bury a valid frame behind unreadable garbage,
/// which is why the fault injector classifies tears as kCorruption).
class RetryingFileSystem : public FileSystem {
 public:
  explicit RetryingFileSystem(FileSystemPtr inner, RetryOptions options = {})
      : inner_(std::move(inner)), options_(options), rng_(options.seed) {}

  const RetryStats& stats() const { return stats_; }

  Status Write(const std::string& path, const std::string& data) override;
  Status Read(const std::string& path, std::string* data) override;
  Status Append(const std::string& path, const std::string& data) override;
  Result<bool> Exists(const std::string& path) override;
  Status Delete(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;
  std::string name() const override {
    return "retrying(" + inner_->name() + ")";
  }

 private:
  /// Run `op` (returning Status) under the retry policy.
  template <typename Op>
  Status RunWithRetries(const Op& op);
  uint64_t NextBackoffMicros(size_t attempt);

  FileSystemPtr inner_;
  RetryOptions options_;
  Mutex rng_mu_{VDB_LOCK_RANK(kFsRetryRng)};
  Rng rng_ VDB_GUARDED_BY(rng_mu_);
  RetryStats stats_;  ///< Atomic counters; no lock needed.
};

}  // namespace storage
}  // namespace vectordb

#endif  // VECTORDB_STORAGE_RETRYING_FILESYSTEM_H_
