#ifndef VECTORDB_STORAGE_OBJECT_STORE_H_
#define VECTORDB_STORAGE_OBJECT_STORE_H_

#include <atomic>
#include <cstddef>

#include "storage/filesystem.h"

namespace vectordb {
namespace storage {

/// Cost/latency model for the simulated object store.
struct ObjectStoreOptions {
  /// Per-operation round-trip latency in microseconds (S3-like: ~10ms).
  size_t op_latency_us = 10000;
  /// Payload bandwidth in bytes/second.
  double bandwidth = 100e6;
  /// When false (default) the latency is only *accounted*, not slept —
  /// tests stay fast while benches read the simulated cost. When true the
  /// calling thread actually sleeps, for end-to-end latency demos.
  bool sleep_for_latency = false;
};

/// Operation counters exposed for tests and the buffer-pool ablation.
struct ObjectStoreStats {
  std::atomic<size_t> reads{0};
  std::atomic<size_t> writes{0};
  std::atomic<size_t> bytes_read{0};
  std::atomic<size_t> bytes_written{0};
  std::atomic<uint64_t> simulated_micros{0};
};

/// Simulated S3: a shared, durable, flat-keyed object store with injected
/// latency and bandwidth accounting (substitution for Amazon S3 in the
/// paper's shared-storage distributed design, Sec 5.3). Wraps an inner
/// FileSystem (memory or local) that provides the actual byte storage, so
/// the distributed tests can share one store across many simulated nodes.
class ObjectStoreFileSystem : public FileSystem {
 public:
  ObjectStoreFileSystem(FileSystemPtr inner, const ObjectStoreOptions& options)
      : inner_(std::move(inner)), options_(options) {}

  Status Write(const std::string& path, const std::string& data) override;
  Status Read(const std::string& path, std::string* data) override;
  Status Append(const std::string& path, const std::string& data) override;
  Result<bool> Exists(const std::string& path) override;
  Status Delete(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;
  std::string name() const override { return "s3sim(" + inner_->name() + ")"; }

  const ObjectStoreStats& stats() const { return stats_; }

 private:
  void Charge(size_t bytes);

  FileSystemPtr inner_;
  ObjectStoreOptions options_;
  ObjectStoreStats stats_;
};

}  // namespace storage
}  // namespace vectordb

#endif  // VECTORDB_STORAGE_OBJECT_STORE_H_
