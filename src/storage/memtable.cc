#include "storage/memtable.h"

namespace vectordb {
namespace storage {

Status MemTable::Insert(RowId row_id,
                        const std::vector<const float*>& field_vectors,
                        const std::vector<double>& attribute_values) {
  if (field_vectors.size() != schema_.vector_dims.size()) {
    return Status::InvalidArgument("wrong number of vector fields");
  }
  if (attribute_values.size() != schema_.attribute_names.size()) {
    return Status::InvalidArgument("wrong number of attributes");
  }
  PendingRow row;
  for (size_t f = 0; f < field_vectors.size(); ++f) {
    row.vectors.insert(row.vectors.end(), field_vectors[f],
                       field_vectors[f] + schema_.vector_dims[f]);
  }
  row.attributes = attribute_values;
  MutexLock lock(&mu_);
  auto [it, inserted] = rows_.emplace(row_id, std::move(row));
  if (!inserted) return Status::AlreadyExists("row id already buffered");
  return Status::OK();
}

bool MemTable::Delete(RowId row_id) {
  MutexLock lock(&mu_);
  return rows_.erase(row_id) != 0;
}

size_t MemTable::num_rows() const {
  MutexLock lock(&mu_);
  return rows_.size();
}

Result<SegmentPtr> MemTable::BuildSegment(SegmentId segment_id) const {
  MutexLock lock(&mu_);
  if (rows_.empty()) return SegmentPtr{};

  SegmentBuilder builder(segment_id, schema_);
  for (const auto& [row_id, row] : rows_) {
    std::vector<const float*> fields;
    fields.reserve(schema_.vector_dims.size());
    size_t offset = 0;
    for (size_t dim : schema_.vector_dims) {
      fields.push_back(row.vectors.data() + offset);
      offset += dim;
    }
    VDB_RETURN_NOT_OK(builder.AddRow(row_id, fields, row.attributes));
  }
  return builder.Finish();
}

void MemTable::Clear() {
  MutexLock lock(&mu_);
  rows_.clear();
}

}  // namespace storage
}  // namespace vectordb
