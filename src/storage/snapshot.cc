#include "storage/snapshot.h"

#include <algorithm>

namespace vectordb {
namespace storage {

const Segment* Snapshot::FindLive(RowId row_id, size_t* position) const {
  for (const auto& segment : segments) {
    if (IsDeleted(row_id, segment->id())) continue;
    const auto pos = segment->PositionOf(row_id);
    if (!pos) continue;
    if (position != nullptr) *position = *pos;
    return segment.get();
  }
  return nullptr;
}

size_t Snapshot::CountVisibleCopies(RowId row_id) const {
  size_t copies = 0;
  for (const auto& segment : segments) {
    if (IsDeleted(row_id, segment->id())) continue;
    const auto& ids = segment->row_ids();
    const auto range = std::equal_range(ids.begin(), ids.end(), row_id);
    copies += static_cast<size_t>(range.second - range.first);
  }
  return copies;
}

size_t Snapshot::CountLiveRowsSlow() const {
  size_t rows = 0;
  for (const auto& segment : segments) {
    for (size_t pos = 0; pos < segment->num_rows(); ++pos) {
      if (!IsDeleted(segment->row_id_at(pos), segment->id())) ++rows;
    }
  }
  return rows;
}

SnapshotManager::SnapshotManager() {
  auto initial = std::make_shared<Snapshot>();
  initial->version = 0;
  initial->tombstones = std::make_shared<TombstoneMap>();
  current_ = initial;
}

SnapshotPtr SnapshotManager::Acquire() const {
  MutexLock lock(&mu_);
  return current_;
}

uint64_t SnapshotManager::current_version() const {
  MutexLock lock(&mu_);
  return current_->version;
}

uint64_t SnapshotManager::Commit(
    const std::function<void(Snapshot*)>& edit) {
  MutexLock lock(&mu_);
  auto next = std::make_shared<Snapshot>(*current_);
  next->version = current_->version + 1;
  // The copy must not share cached segment views with the old version: a
  // view bakes in the old tombstone state. Every version starts cold.
  next->view_cache = std::make_shared<SegmentViewCache>();
  edit(next.get());

  // Any segment present before but absent now awaits GC.
  for (const SegmentPtr& old_seg : current_->segments) {
    const bool still_live =
        std::any_of(next->segments.begin(), next->segments.end(),
                    [&](const SegmentPtr& s) { return s->id() == old_seg->id(); });
    if (!still_live) pending_gc_.push_back(old_seg);
  }
  current_ = next;
  return next->version;
}

void SnapshotManager::SetDropHandler(
    std::function<void(SegmentId)> handler) {
  MutexLock lock(&mu_);
  drop_handler_ = std::move(handler);
}

size_t SnapshotManager::CollectGarbage() {
  std::vector<SegmentPtr> collectable;
  std::function<void(SegmentId)> handler;
  {
    MutexLock lock(&mu_);
    handler = drop_handler_;
    auto it = pending_gc_.begin();
    while (it != pending_gc_.end()) {
      // use_count == 1 ⇒ only the GC list still references the segment:
      // every snapshot that pointed at it has been released.
      if (it->use_count() == 1) {
        collectable.push_back(std::move(*it));
        it = pending_gc_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const SegmentPtr& segment : collectable) {
    if (handler) handler(segment->id());
  }
  return collectable.size();
}

size_t SnapshotManager::pending_gc() const {
  MutexLock lock(&mu_);
  return pending_gc_.size();
}

}  // namespace storage
}  // namespace vectordb
