#include "storage/snapshot.h"

#include <algorithm>

namespace vectordb {
namespace storage {

SnapshotManager::SnapshotManager() {
  auto initial = std::make_shared<Snapshot>();
  initial->version = 0;
  initial->tombstones = std::make_shared<TombstoneMap>();
  current_ = initial;
}

SnapshotPtr SnapshotManager::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t SnapshotManager::current_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->version;
}

uint64_t SnapshotManager::Commit(
    const std::function<void(Snapshot*)>& edit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto next = std::make_shared<Snapshot>(*current_);
  next->version = current_->version + 1;
  edit(next.get());

  // Any segment present before but absent now awaits GC.
  for (const SegmentPtr& old_seg : current_->segments) {
    const bool still_live =
        std::any_of(next->segments.begin(), next->segments.end(),
                    [&](const SegmentPtr& s) { return s->id() == old_seg->id(); });
    if (!still_live) pending_gc_.push_back(old_seg);
  }
  current_ = next;
  return next->version;
}

void SnapshotManager::SetDropHandler(
    std::function<void(SegmentId)> handler) {
  std::lock_guard<std::mutex> lock(mu_);
  drop_handler_ = std::move(handler);
}

size_t SnapshotManager::CollectGarbage() {
  std::vector<SegmentPtr> collectable;
  std::function<void(SegmentId)> handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    handler = drop_handler_;
    auto it = pending_gc_.begin();
    while (it != pending_gc_.end()) {
      // use_count == 1 ⇒ only the GC list still references the segment:
      // every snapshot that pointed at it has been released.
      if (it->use_count() == 1) {
        collectable.push_back(std::move(*it));
        it = pending_gc_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const SegmentPtr& segment : collectable) {
    if (handler) handler(segment->id());
  }
  return collectable.size();
}

size_t SnapshotManager::pending_gc() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_gc_.size();
}

}  // namespace storage
}  // namespace vectordb
