#include "storage/buffer_pool.h"

#include <utility>

#include "common/timer.h"
#include "obs/catalog.h"

namespace vectordb {
namespace storage {

namespace {
size_t DataBytesOf(const SegmentDataPtr& data) { return data->bytes(); }
size_t IndexBytesOf(const IndexHandle& index) { return index->MemoryBytes(); }
}  // namespace

Result<SegmentDataPtr> BufferPool::FetchData(SegmentId id,
                                             const DataLoader& loader) {
  const Key key{id, 0, Tier::kData};
  {
    MutexLock lock(&mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.hits;
      obs::Storage().buffer_pool_hits->Inc();
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return std::static_pointer_cast<const SegmentData>(it->second.blob);
    }
    ++stats_.misses;
    obs::Storage().buffer_pool_misses->Inc();
  }

  // Load outside the lock; concurrent loads of the same tier are benign
  // (first one wins in the cache, both callers get valid blobs).
  Timer load_timer;
  auto loaded = loader();
  if (!loaded.ok()) return loaded.status();
  obs::Storage().data_tier_loads->Inc();
  obs::Storage().tier_load_seconds->Observe(load_timer.ElapsedSeconds());
  SegmentDataPtr data = std::move(loaded).value();
  if (data == nullptr) return Status::NotFound("data loader returned null");
  const size_t bytes = DataBytesOf(data);

  MutexLock lock(&mu_);
  if (bytes > capacity_bytes_) return data;  // Too big to cache.
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    return std::static_pointer_cast<const SegmentData>(it->second.blob);
  }
  InsertLocked(key, data, bytes);
  return data;
}

Result<IndexHandle> BufferPool::FetchIndex(SegmentId id, size_t field,
                                           const IndexLoader& loader) {
  const Key key{id, static_cast<uint32_t>(field), Tier::kIndex};
  {
    MutexLock lock(&mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.hits;
      obs::Storage().buffer_pool_hits->Inc();
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return std::static_pointer_cast<const index::VectorIndex>(
          it->second.blob);
    }
    ++stats_.misses;
    obs::Storage().buffer_pool_misses->Inc();
  }

  Timer load_timer;
  auto loaded = loader();
  if (!loaded.ok()) return loaded.status();
  obs::Storage().index_tier_loads->Inc();
  obs::Storage().tier_load_seconds->Observe(load_timer.ElapsedSeconds());
  IndexHandle index = std::move(loaded).value();
  if (index == nullptr) return Status::NotFound("index loader returned null");
  const size_t bytes = IndexBytesOf(index);

  MutexLock lock(&mu_);
  if (bytes > capacity_bytes_) return index;  // Too big to cache.
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    return std::static_pointer_cast<const index::VectorIndex>(it->second.blob);
  }
  InsertLocked(key, index, bytes);
  return index;
}

void BufferPool::InsertData(SegmentId id, SegmentDataPtr data) {
  if (data == nullptr) return;
  const size_t bytes = DataBytesOf(data);
  MutexLock lock(&mu_);
  if (bytes > capacity_bytes_) return;
  const Key key{id, 0, Tier::kData};
  auto it = cache_.find(key);
  if (it != cache_.end()) EraseLocked(it, /*count_eviction=*/false);
  InsertLocked(key, std::move(data), bytes);
}

void BufferPool::InsertIndex(SegmentId id, size_t field, IndexHandle index) {
  if (index == nullptr) return;
  const size_t bytes = IndexBytesOf(index);
  MutexLock lock(&mu_);
  if (bytes > capacity_bytes_) return;
  const Key key{id, static_cast<uint32_t>(field), Tier::kIndex};
  auto it = cache_.find(key);
  if (it != cache_.end()) EraseLocked(it, /*count_eviction=*/false);
  InsertLocked(key, std::move(index), bytes);
}

void BufferPool::InsertLocked(const Key& key, std::shared_ptr<const void> blob,
                              size_t bytes) {
  if (stats_.data_resident_bytes + stats_.index_resident_bytes + bytes >
      capacity_bytes_) {
    EvictForLocked(stats_.data_resident_bytes + stats_.index_resident_bytes +
                   bytes - capacity_bytes_);
  }
  lru_.push_front(key);
  cache_[key] = {std::move(blob), lru_.begin(), bytes};
  AddResidentLocked(key.tier, static_cast<double>(bytes));
  stats_.resident_entries = cache_.size();
}

void BufferPool::EraseLocked(
    std::unordered_map<Key, Entry, KeyHash>::iterator it,
    bool count_eviction) {
  AddResidentLocked(it->first.tier, -static_cast<double>(it->second.bytes));
  lru_.erase(it->second.lru_it);
  cache_.erase(it);
  stats_.resident_entries = cache_.size();
  if (count_eviction) {
    ++stats_.evictions;
    obs::Storage().buffer_pool_evictions->Inc();
  }
}

void BufferPool::EvictForLocked(size_t needed) {
  size_t freed = 0;
  // Index entries are rebuildable accelerators — drop them all (LRU order)
  // before touching any data entry. Pinned segments are skipped in both
  // passes.
  for (Tier pass : {Tier::kIndex, Tier::kData}) {
    auto it = lru_.end();
    while (freed < needed && it != lru_.begin()) {
      auto cur = std::prev(it);
      if (cur->tier == pass && pinned_.count(cur->id) == 0) {
        auto entry = cache_.find(*cur);
        freed += entry->second.bytes;
        EraseLocked(entry, /*count_eviction=*/true);  // `it` stays valid.
      } else {
        it = cur;
      }
    }
    if (freed >= needed) return;
  }
}

void BufferPool::AddResidentLocked(Tier tier, double delta) {
  // The gauges are process-wide (every pool sums into them): record deltas.
  if (tier == Tier::kData) {
    stats_.data_resident_bytes += static_cast<ptrdiff_t>(delta);
    obs::Storage().data_resident_bytes->Add(delta);
  } else {
    stats_.index_resident_bytes += static_cast<ptrdiff_t>(delta);
    obs::Storage().index_resident_bytes->Add(delta);
  }
  obs::Storage().buffer_pool_resident_bytes->Add(delta);
}

void BufferPool::Pin(SegmentId id) {
  MutexLock lock(&mu_);
  pinned_.insert(id);
}

void BufferPool::Unpin(SegmentId id) {
  MutexLock lock(&mu_);
  pinned_.erase(id);
}

void BufferPool::Invalidate(SegmentId id) {
  MutexLock lock(&mu_);
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->first.id == id) {
      auto victim = it++;
      EraseLocked(victim, /*count_eviction=*/false);
    } else {
      ++it;
    }
  }
}

void BufferPool::InvalidateIndex(SegmentId id, size_t field) {
  MutexLock lock(&mu_);
  auto it = cache_.find(Key{id, static_cast<uint32_t>(field), Tier::kIndex});
  if (it != cache_.end()) EraseLocked(it, /*count_eviction=*/false);
}

void BufferPool::Clear() {
  MutexLock lock(&mu_);
  obs::Storage().data_resident_bytes->Add(
      -static_cast<double>(stats_.data_resident_bytes));
  obs::Storage().index_resident_bytes->Add(
      -static_cast<double>(stats_.index_resident_bytes));
  obs::Storage().buffer_pool_resident_bytes->Add(-static_cast<double>(
      stats_.data_resident_bytes + stats_.index_resident_bytes));
  cache_.clear();
  lru_.clear();
  pinned_.clear();
  stats_.data_resident_bytes = 0;
  stats_.index_resident_bytes = 0;
  stats_.resident_entries = 0;
}

BufferPool::Stats BufferPool::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace storage
}  // namespace vectordb
