#include "storage/buffer_pool.h"

#include "obs/catalog.h"

namespace vectordb {
namespace storage {

Result<SegmentPtr> BufferPool::Fetch(SegmentId id, const Loader& loader) {
  {
    MutexLock lock(&mu_);
    auto it = cache_.find(id);
    if (it != cache_.end()) {
      ++stats_.hits;
      obs::Storage().buffer_pool_hits->Inc();
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.segment;
    }
    ++stats_.misses;
    obs::Storage().buffer_pool_misses->Inc();
  }

  // Load outside the lock; concurrent loads of the same segment are benign
  // (last one wins in the cache, both callers get valid segments).
  auto loaded = loader();
  if (!loaded.ok()) return loaded.status();
  SegmentPtr segment = std::move(loaded).value();
  if (segment == nullptr) return Status::NotFound("loader returned null");
  const size_t bytes = segment->MemoryBytes();

  MutexLock lock(&mu_);
  if (bytes > capacity_bytes_) return segment;  // Too big to cache.
  auto it = cache_.find(id);
  if (it != cache_.end()) return it->second.segment;  // Raced; reuse.
  if (stats_.resident_bytes + bytes > capacity_bytes_) {
    EvictLruLocked(stats_.resident_bytes + bytes - capacity_bytes_);
  }
  lru_.push_front(id);
  cache_[id] = {segment, lru_.begin(), bytes};
  stats_.resident_bytes += bytes;
  stats_.resident_segments = cache_.size();
  // The gauge is process-wide (every pool sums into it), so record deltas.
  obs::Storage().buffer_pool_resident_bytes->Add(static_cast<double>(bytes));
  return segment;
}

void BufferPool::EvictLruLocked(size_t needed) {
  size_t freed = 0;
  while (freed < needed && !lru_.empty()) {
    const SegmentId victim = lru_.back();
    lru_.pop_back();
    auto it = cache_.find(victim);
    freed += it->second.bytes;
    stats_.resident_bytes -= it->second.bytes;
    cache_.erase(it);
    ++stats_.evictions;
    obs::Storage().buffer_pool_evictions->Inc();
  }
  stats_.resident_segments = cache_.size();
  obs::Storage().buffer_pool_resident_bytes->Add(-static_cast<double>(freed));
}

void BufferPool::Invalidate(SegmentId id) {
  MutexLock lock(&mu_);
  auto it = cache_.find(id);
  if (it == cache_.end()) return;
  stats_.resident_bytes -= it->second.bytes;
  obs::Storage().buffer_pool_resident_bytes->Add(
      -static_cast<double>(it->second.bytes));
  lru_.erase(it->second.lru_it);
  cache_.erase(it);
  stats_.resident_segments = cache_.size();
}

void BufferPool::Clear() {
  MutexLock lock(&mu_);
  cache_.clear();
  lru_.clear();
  obs::Storage().buffer_pool_resident_bytes->Add(
      -static_cast<double>(stats_.resident_bytes));
  stats_.resident_bytes = 0;
  stats_.resident_segments = 0;
}

BufferPool::Stats BufferPool::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace storage
}  // namespace vectordb
