#ifndef VECTORDB_STORAGE_SEGMENT_STORE_H_
#define VECTORDB_STORAGE_SEGMENT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/filesystem.h"
#include "storage/segment.h"

namespace vectordb {
namespace storage {

// CRC envelope magics shared by every durable artifact. The envelope is
// (magic, crc32(body), body); DecodeEnvelope verifies both before handing
// the body back, so a torn or bit-flipped artifact fails loudly as
// Corruption instead of parsing garbage.
constexpr uint32_t kManifestEnvMagic = 0x32464D56;  // "VMF2"
constexpr uint32_t kSegmentEnvMagic = 0x32474553;   // "SEG2"
constexpr uint32_t kIndexEnvMagic = 0x32584449;     // "IDX2"

std::string EncodeEnvelope(uint32_t magic, const std::string& body);
Status DecodeEnvelope(uint32_t magic, const std::string& frame,
                      std::string* body);

/// Persistence gateway for the two segment artifacts of format v2:
///
///  * the **data file** `<prefix><id>.seg` — spine + vector columns, the
///    output of Segment::SerializeData, immutable once written;
///  * per-field **index files** `<prefix><id>.f<field>.v<version>.idx` —
///    independently (re)buildable, versioned artifacts published through
///    the manifest's atomic CURRENT commit.
///
/// All writes are verify-after-write: the artifact is read back and its
/// envelope decoded before the call returns, so a store that acked a torn
/// write is caught before the manifest ever references the artifact.
/// Everything outside src/storage/ must persist segments through this
/// class (enforced by the `segment-serialize` lint rule).
class SegmentStore {
 public:
  SegmentStore(FileSystemPtr fs, std::string prefix)
      : fs_(std::move(fs)), prefix_(std::move(prefix)) {}

  const std::string& prefix() const { return prefix_; }

  std::string DataPath(SegmentId id) const;
  std::string IndexPath(SegmentId id, size_t field, uint64_t version) const;

  /// Serialize + envelope + write + verify the data artifact.
  Status WriteData(const Segment& segment);

  /// Read the data artifact into a full Segment (spine + pinned data).
  /// Accepts v2 envelopes, and legacy bare v1 blobs written before the
  /// envelope existed.
  Result<SegmentPtr> ReadSegment(SegmentId id) const;

  /// Read only the vector payload — the demand-paging path. The spine is
  /// parsed and discarded (IO dominates; the live segment already holds
  /// its spine).
  Result<SegmentDataPtr> ReadData(SegmentId id) const;

  /// Serialize + envelope + write + verify one index artifact.
  Status WriteIndex(SegmentId id, size_t field, uint64_t version,
                    const index::VectorIndex& index);

  /// Load and validate one index artifact; the stamped (segment, field,
  /// version) triple must match the path-derived one.
  Result<IndexHandle> ReadIndex(SegmentId id, size_t field,
                                uint64_t version) const;

  Status DeleteIndex(SegmentId id, size_t field, uint64_t version);

  /// Move a corrupt index artifact aside (best effort) so rebuilds don't
  /// collide with it and postmortems can inspect the bytes.
  Status QuarantineIndex(SegmentId id, size_t field, uint64_t version);

  /// Delete the data file and every index/quarantine artifact of `id`.
  Status DeleteSegmentArtifacts(SegmentId id);

 private:
  FileSystemPtr fs_;
  std::string prefix_;
};

using SegmentStorePtr = std::shared_ptr<SegmentStore>;

}  // namespace storage
}  // namespace vectordb

#endif  // VECTORDB_STORAGE_SEGMENT_STORE_H_
