#ifndef VECTORDB_STORAGE_MERGE_POLICY_H_
#define VECTORDB_STORAGE_MERGE_POLICY_H_

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace vectordb {
namespace storage {

struct MergePolicyOptions {
  /// Segments of approximately equal size are merged once at least this
  /// many accumulate in one tier (Lucene's mergeFactor).
  size_t merge_factor = 4;
  /// Segments at or above this row count are never merge *sources* — the
  /// configurable size limit of Sec 2.3 (e.g. 1GB in the paper).
  size_t max_segment_rows = 1u << 20;
  /// Tier width: tier(t) holds sizes in [base * factor^t, base * factor^(t+1)).
  size_t tier_base_rows = 64;
};

struct SegmentInfo {
  SegmentId id = 0;
  size_t num_rows = 0;
};

/// One merge task: the inputs are replaced by a single merged segment.
using MergeGroup = std::vector<SegmentId>;

/// Tiered merge policy (Sec 2.3, "also used in Apache Lucene"): segments
/// are bucketed into geometric size tiers; any tier with >= merge_factor
/// segments yields a merge of its merge_factor smallest members, provided
/// the merged size stays under max_segment_rows. Returns all applicable
/// merge groups for one round.
std::vector<MergeGroup> PickMerges(const std::vector<SegmentInfo>& segments,
                                   const MergePolicyOptions& options);

}  // namespace storage
}  // namespace vectordb

#endif  // VECTORDB_STORAGE_MERGE_POLICY_H_
