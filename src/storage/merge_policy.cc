#include "storage/merge_policy.h"

#include <algorithm>
#include <map>

namespace vectordb {
namespace storage {

namespace {
size_t TierOf(size_t rows, const MergePolicyOptions& options) {
  size_t tier = 0;
  size_t upper = std::max<size_t>(options.tier_base_rows, 1);
  while (rows >= upper) {
    upper *= std::max<size_t>(options.merge_factor, 2);
    ++tier;
  }
  return tier;
}
}  // namespace

std::vector<MergeGroup> PickMerges(const std::vector<SegmentInfo>& segments,
                                   const MergePolicyOptions& options) {
  // Bucket merge-eligible segments by tier.
  std::map<size_t, std::vector<SegmentInfo>> tiers;
  for (const SegmentInfo& info : segments) {
    if (info.num_rows >= options.max_segment_rows) continue;
    tiers[TierOf(info.num_rows, options)].push_back(info);
  }

  std::vector<MergeGroup> groups;
  for (auto& [tier, members] : tiers) {
    if (members.size() < options.merge_factor) continue;
    std::sort(members.begin(), members.end(),
              [](const SegmentInfo& a, const SegmentInfo& b) {
                return a.num_rows < b.num_rows;
              });
    // Greedily cut the tier into merge_factor-sized groups, smallest first,
    // respecting the max size for the merged output.
    size_t i = 0;
    while (members.size() - i >= options.merge_factor) {
      MergeGroup group;
      size_t merged_rows = 0;
      size_t j = i;
      while (j < members.size() && group.size() < options.merge_factor &&
             merged_rows + members[j].num_rows <= options.max_segment_rows) {
        merged_rows += members[j].num_rows;
        group.push_back(members[j].id);
        ++j;
      }
      if (group.size() < 2) break;  // Nothing mergeable without overflow.
      groups.push_back(std::move(group));
      i = j;
    }
  }
  return groups;
}

}  // namespace storage
}  // namespace vectordb
