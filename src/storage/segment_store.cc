#include "storage/segment_store.h"

#include <utility>

#include "common/binary_io.h"
#include "common/crc32.h"
#include "index/index_factory.h"

namespace vectordb {
namespace storage {

namespace {
constexpr uint32_t kIndexMagic = 0x58444956;  // "VIDX"
constexpr uint32_t kIndexFormatVersion = 1;
}  // namespace

std::string EncodeEnvelope(uint32_t magic, const std::string& body) {
  std::string out;
  BinaryWriter writer(&out);
  writer.PutU32(magic);
  writer.PutU32(Crc32(body));
  out.append(body);
  return out;
}

Status DecodeEnvelope(uint32_t magic, const std::string& frame,
                      std::string* body) {
  BinaryReader reader(frame);
  uint32_t got_magic, crc;
  if (!reader.GetU32(&got_magic) || got_magic != magic) {
    return Status::Corruption("bad envelope magic");
  }
  if (!reader.GetU32(&crc)) return Status::Corruption("truncated envelope");
  const size_t offset = reader.position();
  if (Crc32(frame.data() + offset, frame.size() - offset) != crc) {
    return Status::Corruption("envelope checksum mismatch");
  }
  body->assign(frame, offset, frame.size() - offset);
  return Status::OK();
}

std::string SegmentStore::DataPath(SegmentId id) const {
  return prefix_ + std::to_string(id) + ".seg";
}

std::string SegmentStore::IndexPath(SegmentId id, size_t field,
                                    uint64_t version) const {
  return prefix_ + std::to_string(id) + ".f" + std::to_string(field) + ".v" +
         std::to_string(version) + ".idx";
}

Status SegmentStore::WriteData(const Segment& segment) {
  std::string blob;
  VDB_RETURN_NOT_OK(segment.SerializeData(&blob));
  const std::string frame = EncodeEnvelope(kSegmentEnvMagic, blob);
  const std::string path = DataPath(segment.id());
  VDB_RETURN_NOT_OK(fs_->Write(path, frame));
  // Verify-after-write: a store that acked a torn write must fail here,
  // before the manifest ever references the artifact.
  std::string readback;
  VDB_RETURN_NOT_OK(fs_->Read(path, &readback));
  std::string body;
  VDB_RETURN_NOT_OK(DecodeEnvelope(kSegmentEnvMagic, readback, &body));
  if (body != blob) {
    return Status::Corruption("segment data verify-after-write mismatch");
  }
  return Status::OK();
}

Result<SegmentPtr> SegmentStore::ReadSegment(SegmentId id) const {
  std::string frame;
  VDB_RETURN_NOT_OK(fs_->Read(DataPath(id), &frame));
  BinaryReader probe(frame);
  uint32_t magic = 0;
  std::string body;
  if (probe.GetU32(&magic) && magic == kSegmentEnvMagic) {
    VDB_RETURN_NOT_OK(DecodeEnvelope(kSegmentEnvMagic, frame, &body));
    return Segment::DeserializeData(body);
  }
  // Legacy bare blob (pre-envelope v1 files).
  return Segment::DeserializeData(frame);
}

Result<SegmentDataPtr> SegmentStore::ReadData(SegmentId id) const {
  std::string frame;
  VDB_RETURN_NOT_OK(fs_->Read(DataPath(id), &frame));
  BinaryReader probe(frame);
  uint32_t magic = 0;
  std::string body;
  if (probe.GetU32(&magic) && magic == kSegmentEnvMagic) {
    VDB_RETURN_NOT_OK(DecodeEnvelope(kSegmentEnvMagic, frame, &body));
  } else {
    body = frame;  // Legacy bare blob.
  }
  auto parsed = Segment::DeserializeData(body, /*load_v1_indexes=*/false);
  if (!parsed.ok()) return parsed.status();
  // Extract without locking the temp segment: ReadData runs inside the
  // owning segment's data loader, i.e. under a kSegmentTier-ranked lock.
  return Segment::TakeDeserializedData(parsed.value());
}

Status SegmentStore::WriteIndex(SegmentId id, size_t field, uint64_t version,
                                const index::VectorIndex& index) {
  std::string blob;
  VDB_RETURN_NOT_OK(index.Serialize(&blob));
  std::string body;
  BinaryWriter writer(&body);
  writer.PutU32(kIndexMagic);
  writer.PutU32(kIndexFormatVersion);
  writer.PutU64(id);
  writer.PutU32(static_cast<uint32_t>(field));
  writer.PutU64(version);
  writer.PutU32(static_cast<uint32_t>(index.type()));
  writer.PutU32(static_cast<uint32_t>(index.metric()));
  writer.PutU64(index.dim());
  writer.PutString(blob);

  const std::string frame = EncodeEnvelope(kIndexEnvMagic, body);
  const std::string path = IndexPath(id, field, version);
  VDB_RETURN_NOT_OK(fs_->Write(path, frame));
  std::string readback;
  VDB_RETURN_NOT_OK(fs_->Read(path, &readback));
  std::string verified;
  VDB_RETURN_NOT_OK(DecodeEnvelope(kIndexEnvMagic, readback, &verified));
  if (verified != body) {
    return Status::Corruption("index verify-after-write mismatch");
  }
  return Status::OK();
}

Result<IndexHandle> SegmentStore::ReadIndex(SegmentId id, size_t field,
                                            uint64_t version) const {
  std::string frame;
  VDB_RETURN_NOT_OK(fs_->Read(IndexPath(id, field, version), &frame));
  std::string body;
  VDB_RETURN_NOT_OK(DecodeEnvelope(kIndexEnvMagic, frame, &body));

  BinaryReader reader(body);
  uint32_t magic, format, got_field, type, metric;
  uint64_t got_id, got_version, dim;
  std::string blob;
  if (!reader.GetU32(&magic) || magic != kIndexMagic) {
    return Status::Corruption("bad index artifact magic");
  }
  if (!reader.GetU32(&format) || format != kIndexFormatVersion) {
    return Status::Corruption("unsupported index artifact format");
  }
  if (!reader.GetU64(&got_id) || !reader.GetU32(&got_field) ||
      !reader.GetU64(&got_version) || !reader.GetU32(&type) ||
      !reader.GetU32(&metric) || !reader.GetU64(&dim) ||
      !reader.GetString(&blob)) {
    return Status::Corruption("truncated index artifact");
  }
  if (got_id != id || got_field != field || got_version != version) {
    return Status::Corruption("index artifact stamp mismatch");
  }
  auto created = index::CreateIndex(static_cast<index::IndexType>(type), dim,
                                    static_cast<MetricType>(metric));
  if (!created.ok()) return created.status();
  index::IndexPtr idx = std::move(created).value();
  VDB_RETURN_NOT_OK(idx->Deserialize(blob));
  return IndexHandle(std::move(idx));
}

Status SegmentStore::DeleteIndex(SegmentId id, size_t field,
                                 uint64_t version) {
  return fs_->Delete(IndexPath(id, field, version));
}

Status SegmentStore::QuarantineIndex(SegmentId id, size_t field,
                                     uint64_t version) {
  const std::string path = IndexPath(id, field, version);
  std::string bytes;
  Status read = fs_->Read(path, &bytes);
  if (read.ok()) {
    fs_->Write(path + ".quarantined", bytes).IgnoreError();
  }
  return fs_->Delete(path);
}

Status SegmentStore::DeleteSegmentArtifacts(SegmentId id) {
  // The trailing '.' keeps the prefix exact: "1." never matches "10.seg".
  auto listed = fs_->List(prefix_ + std::to_string(id) + ".");
  if (!listed.ok()) return listed.status();
  Status result = Status::OK();
  for (const std::string& path : listed.value()) {
    Status st = fs_->Delete(path);
    if (!st.ok() && result.ok()) result = st;
  }
  return result;
}

}  // namespace storage
}  // namespace vectordb
