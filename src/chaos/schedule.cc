#include "chaos/schedule.h"

namespace vectordb {
namespace chaos {

namespace {

struct Weighted {
  ChaosOp op;
  uint64_t weight;
};

/// Relative event weights. Data-plane ops dominate (~84%) so most events
/// measure serving behavior; the rest is topology churn and fault injection.
constexpr Weighted kWeights[] = {
    {ChaosOp::kInsert, 36},       {ChaosOp::kSearch, 24},
    {ChaosOp::kDelete, 8},        {ChaosOp::kFlush, 12},
    {ChaosOp::kMaintenance, 4},   {ChaosOp::kCrashReader, 4},
    {ChaosOp::kRestartReader, 4}, {ChaosOp::kAddReader, 1},
    {ChaosOp::kRemoveReader, 1},  {ChaosOp::kCrashWriter, 2},
    {ChaosOp::kRestartWriter, 3}, {ChaosOp::kInjectSearchFault, 3},
    {ChaosOp::kStorageFault, 2},  {ChaosOp::kIndexBuild, 3},
    {ChaosOp::kManifestFault, 2},
};

uint64_t TotalWeight() {
  uint64_t total = 0;
  for (const Weighted& w : kWeights) total += w.weight;
  return total;
}

}  // namespace

const char* ChaosOpName(ChaosOp op) {
  switch (op) {
    case ChaosOp::kInsert: return "insert";
    case ChaosOp::kDelete: return "delete";
    case ChaosOp::kFlush: return "flush";
    case ChaosOp::kSearch: return "search";
    case ChaosOp::kMaintenance: return "maintenance";
    case ChaosOp::kCrashReader: return "crash_reader";
    case ChaosOp::kRestartReader: return "restart_reader";
    case ChaosOp::kAddReader: return "add_reader";
    case ChaosOp::kRemoveReader: return "remove_reader";
    case ChaosOp::kCrashWriter: return "crash_writer";
    case ChaosOp::kRestartWriter: return "restart_writer";
    case ChaosOp::kInjectSearchFault: return "inject_search_fault";
    case ChaosOp::kStorageFault: return "storage_fault";
    case ChaosOp::kIndexBuild: return "index_build";
    case ChaosOp::kManifestFault: return "manifest_fault";
  }
  return "unknown";
}

ChaosSchedule ChaosSchedule::Generate(const ChaosScheduleOptions& options) {
  ChaosSchedule schedule;
  schedule.events_.reserve(options.num_events);
  Rng rng(options.seed);
  const uint64_t total = TotalWeight();
  const size_t collections =
      options.num_collections == 0 ? 1 : options.num_collections;
  for (size_t i = 0; i < options.num_events; ++i) {
    ChaosEvent event;
    uint64_t draw = rng.NextUint64(total);
    for (const Weighted& w : kWeights) {
      if (draw < w.weight) {
        event.op = w.op;
        break;
      }
      draw -= w.weight;
    }
    event.collection = rng.NextUint64(collections);
    event.arg = rng.NextUint64(uint64_t{1} << 32);
    schedule.events_.push_back(event);
  }
  return schedule;
}

size_t ChaosSchedule::CountOf(ChaosOp op) const {
  size_t count = 0;
  for (const ChaosEvent& event : events_) {
    if (event.op == op) ++count;
  }
  return count;
}

std::string ChaosSchedule::Summary() const {
  std::string out;
  for (const Weighted& w : kWeights) {
    if (!out.empty()) out += " ";
    out += ChaosOpName(w.op);
    out += "=" + std::to_string(CountOf(w.op));
  }
  return out;
}

}  // namespace chaos
}  // namespace vectordb
