#include "chaos/runner.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/timer.h"

namespace vectordb {
namespace chaos {

namespace {

/// Both clusters keep every segment flat-scanned and never auto-flush:
/// exact scores are segmentation-invariant, so chaos and twin answers are
/// comparable bit for bit no matter how differently their LSM trees evolved,
/// and visibility only ever advances at the runner's explicit flush events.
constexpr size_t kNeverRows = size_t{1} << 30;

}  // namespace

std::string ChaosReport::DeterministicFingerprint() const {
  std::string fp;
  auto add = [&fp](const char* key, size_t value) {
    fp += key;
    fp += "=" + std::to_string(value) + ";";
  };
  add("seed", static_cast<size_t>(seed));
  add("events", events);
  add("collections", collections);
  add("rf", replication_factor);
  add("inserts_acked", inserts_acked);
  add("inserts_rejected", inserts_rejected);
  add("deletes_acked", deletes_acked);
  add("deletes_rejected", deletes_rejected);
  add("flushes_ok", flushes_ok);
  add("flushes_failed", flushes_failed);
  add("maintenance_ok", maintenance_ok);
  add("maintenance_failed", maintenance_failed);
  add("searches_total", searches_total);
  add("searches_ok", searches_ok);
  add("searches_failed", searches_failed);
  add("searches_compared", searches_compared);
  add("wrong_result_queries", wrong_result_queries);
  add("reader_crashes", reader_crashes);
  add("reader_restarts", reader_restarts);
  add("reader_restart_failures", reader_restart_failures);
  add("readers_added", readers_added);
  add("readers_removed", readers_removed);
  add("writer_crashes", writer_crashes);
  add("writer_restarts", writer_restarts);
  add("writer_restart_failures", writer_restart_failures);
  add("search_faults_injected", search_faults_injected);
  add("storage_fault_rules", storage_fault_rules);
  add("storage_faults_fired", storage_faults_fired);
  add("index_builds_ok", index_builds_ok);
  add("index_builds_failed", index_builds_failed);
  add("indexes_built", indexes_built);
  add("manifest_fault_rules", manifest_fault_rules);
  add("rpcs", rpcs);
  add("degraded_queries", degraded_queries);
  add("failover_rpcs", failover_rpcs);
  add("publish_failures", publish_failures);
  add("refresh_retries", refresh_retries);
  add("final_rows_checked", final_rows_checked);
  add("acked_rows_lost", acked_rows_lost);
  add("deleted_rows_resurrected", deleted_rows_resurrected);
  add("invariant_violations", invariant_violations);
  char availability_text[32];
  std::snprintf(availability_text, sizeof(availability_text), "%.9f",
                availability);
  fp += "availability=";
  fp += availability_text;
  fp += ";";
  for (const std::string& v : violations) fp += "violation=" + v + ";";
  return fp;
}

ChaosRunner::ChaosRunner(const ChaosRunnerOptions& options)
    : options_(options),
      rng_(options.seed ^ 0x9e3779b97f4a7c15ull),
      query_rng_(options.seed ^ 0xc2b2ae3d27d4eb4full) {
  report_.seed = options_.seed;
  report_.events = options_.num_events;
  report_.collections = options_.num_collections;
  report_.replication_factor = options_.replication_factor;
}

std::string ChaosRunner::CollectionName(size_t index) const {
  return "tenant-" + std::to_string(index);
}

std::vector<float> ChaosRunner::DrawVector() {
  std::vector<float> vector(options_.dim);
  for (float& x : vector) x = rng_.NextGaussian();
  return vector;
}

void ChaosRunner::Violation(std::string message) {
  ++report_.invariant_violations;
  if (report_.violations.size() < 16) {
    report_.violations.push_back(std::move(message));
  }
}

Status ChaosRunner::SetupClusters() {
  chaos_fs_ = std::make_shared<storage::FaultInjectionFileSystem>(
      storage::NewMemoryFileSystem(), options_.seed + 1);

  dist::ClusterOptions chaos_options;
  chaos_options.shared_fs = chaos_fs_;
  chaos_options.num_readers = options_.num_readers;
  chaos_options.replication_factor = options_.replication_factor;
  chaos_options.memtable_flush_rows = kNeverRows;
  // kIndexBuild events publish kFlat indexes out of band; kFlat answers
  // are bitwise-identical to the flat scan, so the twin (which never
  // builds) stays comparable hit for hit.
  chaos_options.index_build_threshold_rows =
      options_.index_build_threshold_rows;
  chaos_ = std::make_unique<dist::Cluster>(chaos_options);

  dist::ClusterOptions twin_options = chaos_options;
  twin_options.shared_fs = storage::NewMemoryFileSystem();
  twin_options.index_build_threshold_rows = kNeverRows;
  twin_ = std::make_unique<dist::Cluster>(twin_options);

  next_row_id_.assign(options_.num_collections, 0);
  publish_pending_.assign(options_.num_collections, false);

  for (size_t c = 0; c < options_.num_collections; ++c) {
    db::CollectionSchema schema;
    schema.name = CollectionName(c);
    schema.vector_fields = {{"v", options_.dim}};
    schema.attributes = {};
    schema.default_index = index::IndexType::kFlat;
    schema.index_params.nlist = 4;
    VDB_RETURN_NOT_OK(chaos_->CreateCollection(schema));
    VDB_RETURN_NOT_OK(twin_->CreateCollection(schema));
  }
  return Status::OK();
}

Status ChaosRunner::Warmup() {
  for (size_t c = 0; c < options_.num_collections; ++c) {
    const std::string name = CollectionName(c);
    for (size_t i = 0; i < options_.warmup_rows; ++i) {
      db::Entity entity;
      entity.id = next_row_id_[c]++;
      std::vector<float> vector = DrawVector();
      entity.vectors.push_back(vector);
      VDB_RETURN_NOT_OK(chaos_->Insert(name, entity));
      VDB_RETURN_NOT_OK(twin_->Insert(name, entity));
      checker_.RecordAckedInsert(name, entity.id, std::move(vector));
    }
    VDB_RETURN_NOT_OK(chaos_->Flush(name));
    VDB_RETURN_NOT_OK(twin_->Flush(name));
  }
  return Status::OK();
}

void ChaosRunner::DoInsert(const ChaosEvent& event) {
  const std::string name = CollectionName(event.collection);
  const size_t batch = 1 + event.arg % 3;
  for (size_t b = 0; b < batch; ++b) {
    db::Entity entity;
    entity.id = next_row_id_[event.collection]++;
    std::vector<float> vector = DrawVector();
    entity.vectors.push_back(vector);
    const Status acked = chaos_->Insert(name, entity);
    if (!acked.ok()) {
      ++report_.inserts_rejected;
      continue;
    }
    ++report_.inserts_acked;
    const Status mirrored = twin_->Insert(name, entity);
    if (!mirrored.ok()) {
      Violation("twin rejected mirrored insert " + name + "/" +
                std::to_string(entity.id) + ": " + mirrored.ToString());
    }
    checker_.RecordAckedInsert(name, entity.id, std::move(vector));
  }
}

void ChaosRunner::DoDelete(const ChaosEvent& event) {
  const std::string name = CollectionName(event.collection);
  std::optional<RowId> target = checker_.PickLiveRow(name, &rng_);
  if (!target.has_value()) return;  // Nothing acked to delete yet.
  const Status acked = chaos_->Delete(name, *target);
  if (std::getenv("VDB_CHAOS_TRACE") != nullptr) {
    std::fprintf(stderr, "    delete %s/%lld -> %s\n", name.c_str(),
                 static_cast<long long>(*target), acked.ToString().c_str());
  }
  if (!acked.ok()) {
    ++report_.deletes_rejected;
    return;
  }
  ++report_.deletes_acked;
  const Status mirrored = twin_->Delete(name, *target);
  if (!mirrored.ok()) {
    Violation("twin rejected mirrored delete " + name + "/" +
              std::to_string(*target) + ": " + mirrored.ToString());
  }
  checker_.RecordAckedDelete(name, *target);
}

void ChaosRunner::DoFlush(const ChaosEvent& event) {
  const std::string name = CollectionName(event.collection);
  // Split flush from publish: once the writer-side flush commits, the state
  // is durable and the twin must mirror it even if no reader can be told.
  const Status flushed = chaos_->FlushWriter(name);
  if (!flushed.ok()) {
    ++report_.flushes_failed;
    return;
  }
  ++report_.flushes_ok;
  const Status mirrored = twin_->Flush(name);
  if (!mirrored.ok()) {
    Violation("twin flush failed for " + name + ": " + mirrored.ToString());
  }
  publish_pending_[event.collection] = true;
  const Status published = chaos_->Publish(name);
  if (std::getenv("VDB_CHAOS_TRACE") != nullptr) {
    std::fprintf(stderr, "    flush %s publish -> %s stale=%zu\n",
                 name.c_str(), published.ToString().c_str(),
                 chaos_->stale_readers(name));
  }
  publish_pending_[event.collection] = false;
}

void ChaosRunner::DoMaintenance(const ChaosEvent& event) {
  const std::string name = CollectionName(event.collection);
  // Same durability split as DoFlush: mirror the twin as soon as the
  // writer-side flush commits, because merge or publish failing afterwards
  // does not un-flush anything.
  const Status flushed = chaos_->FlushWriter(name);
  if (std::getenv("VDB_CHAOS_TRACE") != nullptr) {
    std::fprintf(stderr, "    maintenance %s flush -> %s\n", name.c_str(),
                 flushed.ToString().c_str());
  }
  if (!flushed.ok()) {
    ++report_.maintenance_failed;
    return;
  }
  const Status mirrored = twin_->Flush(name);
  if (!mirrored.ok()) {
    Violation("twin flush failed for " + name + ": " + mirrored.ToString());
  }
  publish_pending_[event.collection] = true;
  const Status maintained = chaos_->RunMaintenance(name);
  if (std::getenv("VDB_CHAOS_TRACE") != nullptr) {
    std::fprintf(stderr, "    maintenance %s -> %s stale=%zu\n", name.c_str(),
                 maintained.ToString().c_str(), chaos_->stale_readers(name));
  }
  if (maintained.ok()) {
    ++report_.maintenance_ok;
    publish_pending_[event.collection] = false;
  } else {
    // Merge/publish died somewhere; readers may have never seen the new
    // manifest, so comparisons stay off until the next full publish.
    ++report_.maintenance_failed;
  }
}

bool ChaosRunner::ComparisonEligible(size_t collection) const {
  return !publish_pending_[collection] &&
         chaos_->stale_readers(CollectionName(collection)) == 0;
}

void ChaosRunner::DoSearch(const ChaosEvent& event) {
  const std::string name = CollectionName(event.collection);
  const size_t nq = options_.search_nq;
  std::vector<float> queries(nq * options_.dim);
  for (float& x : queries) x = query_rng_.NextGaussian();
  db::QueryOptions query_options;
  query_options.k = options_.search_k;

  ++report_.searches_total;
  auto got = chaos_->Search(name, "v", queries.data(), nq, query_options);
  if (!got.ok()) {
    ++report_.searches_failed;
    return;
  }
  ++report_.searches_ok;

  // Eligibility is checked *after* the search: a stale reader may have
  // lazily healed at the start of its scatter leg, in which case this very
  // answer is already fresh.
  if (!ComparisonEligible(event.collection)) return;
  auto want = twin_->Search(name, "v", queries.data(), nq, query_options);
  if (!want.ok()) {
    Violation("twin search failed for " + name + ": " +
              want.status().ToString());
    return;
  }
  ++report_.searches_compared;
  std::string diff;
  if (!InvariantChecker::SameHits(got.value(), want.value(), &diff)) {
    ++report_.wrong_result_queries;
    Violation("wrong result on " + name + ": " + diff);
    if (std::getenv("VDB_CHAOS_TRACE") != nullptr) {
      std::fprintf(stderr, "    WRONG %s: %s\n", name.c_str(), diff.c_str());
      for (size_t q = 0; q < got.value().size(); ++q) {
        std::fprintf(stderr, "      q%zu chaos:", q);
        for (const auto& h : got.value()[q]) {
          std::fprintf(stderr, " %lld:%.6f", static_cast<long long>(h.id),
                       h.score);
        }
        std::fprintf(stderr, "\n      q%zu twin: ", q);
        for (const auto& h : want.value()[q]) {
          std::fprintf(stderr, " %lld:%.6f", static_cast<long long>(h.id),
                       h.score);
        }
        std::fprintf(stderr, "\n");
      }
    }
  } else if (std::getenv("VDB_CHAOS_TRACE") != nullptr) {
    std::fprintf(stderr, "    compare ok %s\n", name.c_str());
  }
}

void ChaosRunner::DoCrashReader() {
  if (chaos_->num_live_readers() <= 1) return;  // Keep one shard server up.
  const std::vector<std::string> live = chaos_->live_readers();
  const std::string victim = live[rng_.NextUint64(live.size())];
  if (chaos_->CrashReader(victim).ok()) {
    crashed_readers_.push_back(victim);
    ++report_.reader_crashes;
  }
}

void ChaosRunner::DoRestartReader() {
  if (crashed_readers_.empty()) return;
  const size_t index = rng_.NextUint64(crashed_readers_.size());
  const std::string name = crashed_readers_[index];
  const Status restarted = chaos_->RestartReader(name);
  if (restarted.ok()) {
    crashed_readers_.erase(crashed_readers_.begin() +
                           static_cast<ptrdiff_t>(index));
    ++report_.reader_restarts;
  } else {
    ++report_.reader_restart_failures;  // Stays in the pool for a retry.
  }
}

void ChaosRunner::DoAddReader() {
  if (chaos_->num_live_readers() >= options_.max_readers) return;
  if (chaos_->AddReader().ok()) ++report_.readers_added;
}

void ChaosRunner::DoRemoveReader() {
  if (chaos_->num_live_readers() <= 2) return;
  const std::vector<std::string> live = chaos_->live_readers();
  const std::string victim = live[rng_.NextUint64(live.size())];
  if (chaos_->RemoveReader(victim).ok()) ++report_.readers_removed;
}

void ChaosRunner::DoCrashWriter() {
  if (!chaos_->writer_alive()) return;
  if (chaos_->CrashWriter().ok()) ++report_.writer_crashes;
}

void ChaosRunner::DoRestartWriter() {
  if (chaos_->writer_alive()) return;
  const Status restarted = chaos_->RestartWriter();
  if (restarted.ok()) {
    ++report_.writer_restarts;
  } else {
    ++report_.writer_restart_failures;  // A later event retries.
  }
}

void ChaosRunner::DoInjectSearchFault(const ChaosEvent& event) {
  if (chaos_->num_live_readers() == 0) return;
  const std::vector<std::string> live = chaos_->live_readers();
  const std::string victim = live[rng_.NextUint64(live.size())];
  const size_t faults = 1 + event.arg % 2;
  if (chaos_->InjectReaderSearchFaults(victim, faults).ok()) {
    ++report_.search_faults_injected;
  }
}

void ChaosRunner::DoStorageFault(const ChaosEvent& event) {
  if (!options_.storage_faults) return;
  // One-shot rules scoped to the data tree. Bit flips only target READS:
  // storage stays intact and CRC envelopes turn the flip into a loud leg
  // failure. A bit flip on the WAL's append path would be undetectable at
  // ack time and could silently void the zero-acked-loss invariant — that
  // failure mode is out of the model (it needs end-to-end page checksums,
  // not a serving-layer harness).
  storage::FaultRule rule;
  rule.path_prefix = "cluster/data/";
  rule.nth = 1 + (event.arg >> 8) % 8;
  rule.max_triggers = 1;
  switch (event.arg % 4) {
    case 0:
      rule.ops = storage::kOpRead;
      rule.effect = storage::FaultEffect::kTransient;
      break;
    case 1:
      rule.ops = storage::kOpRead;
      rule.effect = storage::FaultEffect::kBitFlip;
      break;
    case 2:
      // Torn WAL append: a prefix lands, the call fails. The acked suffix
      // stays safe because WriteAheadLog::Append heals the torn tail before
      // acknowledging anything else.
      rule.ops = storage::kOpAppend;
      rule.effect = storage::FaultEffect::kTornAppend;
      rule.torn_fraction = 0.5;
      break;
    default:
      rule.ops = storage::kOpWrite;
      rule.effect = storage::FaultEffect::kTransient;
      break;
  }
  chaos_fs_->AddRule(rule);
  ++report_.storage_fault_rules;
}

void ChaosRunner::DoIndexBuild(const ChaosEvent& event) {
  const std::string name = CollectionName(event.collection);
  // Builds only cover sealed segments, so drain the memtable first with the
  // same durability split as DoMaintenance. The flush is also what keeps
  // the twin comparable: publishing refreshes readers from shared storage
  // including the WAL tail, so a publish over an unflushed memtable would
  // leak rows the twin's readers cannot see yet.
  const Status flushed = chaos_->FlushWriter(name);
  if (std::getenv("VDB_CHAOS_TRACE") != nullptr) {
    std::fprintf(stderr, "    index_build %s flush -> %s\n", name.c_str(),
                 flushed.ToString().c_str());
  }
  if (!flushed.ok()) {
    ++report_.index_builds_failed;
    return;
  }
  const Status mirrored = twin_->Flush(name);
  if (!mirrored.ok()) {
    Violation("twin flush failed for " + name + ": " + mirrored.ToString());
  }
  // The build itself runs without the write lock; only the manifest flip
  // at the end publishes. Readers that miss the publish keep serving the
  // old (index-free) snapshot, which answers identically under kFlat.
  publish_pending_[event.collection] = true;
  size_t built = 0;
  const Status status = chaos_->BuildIndexes(name, &built);
  if (std::getenv("VDB_CHAOS_TRACE") != nullptr) {
    std::fprintf(stderr, "    index_build %s -> %s built=%zu\n",
                 name.c_str(), status.ToString().c_str(), built);
  }
  if (status.ok()) {
    ++report_.index_builds_ok;
    report_.indexes_built += built;
    publish_pending_[event.collection] = false;
  } else {
    // Build or publish died; readers may be stale until the next
    // successful publish, so comparisons stay off.
    ++report_.index_builds_failed;
  }
}

void ChaosRunner::DoManifestFault(const ChaosEvent& event) {
  if (!options_.storage_faults) return;
  // Target the commit point itself: one-shot faults scoped to this
  // tenant's MANIFEST objects, followed immediately by a maintenance
  // cycle that has to publish through them. Write faults must fail the
  // publish atomically (readers keep the old manifest); read bit flips
  // must be caught by the manifest CRC envelope on the next refresh.
  storage::FaultRule rule;
  rule.path_prefix = "cluster/data/" + CollectionName(event.collection) +
                     "/MANIFEST";
  rule.nth = 1;
  rule.max_triggers = 1;
  switch (event.arg % 3) {
    case 0:
      rule.ops = storage::kOpWrite;
      rule.effect = storage::FaultEffect::kTransient;
      break;
    case 1:
      rule.ops = storage::kOpRead;
      rule.effect = storage::FaultEffect::kBitFlip;
      break;
    default:
      rule.ops = storage::kOpRead;
      rule.effect = storage::FaultEffect::kTransient;
      break;
  }
  chaos_fs_->AddRule(rule);
  ++report_.manifest_fault_rules;
  DoMaintenance(event);
}

Status ChaosRunner::Heal() {
  chaos_fs_->ClearRules();
  for (const std::string& name : chaos_->live_readers()) {
    chaos_->InjectReaderSearchFaults(name, 0).IgnoreError();
  }
  for (int attempt = 0; attempt < 5 && !chaos_->writer_alive(); ++attempt) {
    const Status restarted = chaos_->RestartWriter();
    if (!restarted.ok() && attempt == 4) return restarted;
  }
  while (!crashed_readers_.empty()) {
    const std::string name = crashed_readers_.back();
    VDB_RETURN_NOT_OK(chaos_->RestartReader(name));
    crashed_readers_.pop_back();
  }
  if (chaos_->num_live_readers() == 0) {
    VDB_RETURN_NOT_OK(chaos_->AddReader());
  }
  for (size_t c = 0; c < options_.num_collections; ++c) {
    const std::string name = CollectionName(c);
    VDB_RETURN_NOT_OK(chaos_->Flush(name));
    VDB_RETURN_NOT_OK(twin_->Flush(name));
    publish_pending_[c] = false;
    if (chaos_->stale_readers(name) != 0) {
      return Status::Internal("reader still stale after fault-free publish");
    }
  }
  return Status::OK();
}

void ChaosRunner::FinalAudit() {
  // Healed cluster vs twin, one last converged comparison per collection.
  db::QueryOptions query_options;
  query_options.k = options_.search_k;
  for (size_t c = 0; c < options_.num_collections; ++c) {
    const std::string name = CollectionName(c);
    const size_t nq = options_.search_nq;
    std::vector<float> queries(nq * options_.dim);
    for (float& x : queries) x = query_rng_.NextGaussian();
    auto got = chaos_->Search(name, "v", queries.data(), nq, query_options);
    auto want = twin_->Search(name, "v", queries.data(), nq, query_options);
    if (!got.ok() || !want.ok()) {
      Violation("final comparison search failed for " + name);
      continue;
    }
    ++report_.searches_compared;
    std::string diff;
    if (!InvariantChecker::SameHits(got.value(), want.value(), &diff)) {
      ++report_.wrong_result_queries;
      Violation("final wrong result on " + name + ": " + diff);
    }
  }

  const FinalSweepStats sweep =
      checker_.VerifyFinalState(chaos_.get(), "v", &report_.violations);
  report_.final_rows_checked = sweep.rows_checked;
  report_.acked_rows_lost = sweep.acked_rows_lost;
  report_.deleted_rows_resurrected = sweep.deleted_rows_resurrected;
  report_.invariant_violations +=
      sweep.acked_rows_lost + sweep.deleted_rows_resurrected;
}

void ChaosRunner::CheckCounterConsistency() {
  report_.rpcs = chaos_->rpc_count();
  report_.degraded_queries = chaos_->degraded_queries();
  report_.failover_rpcs = chaos_->failover_rpcs();
  report_.publish_failures = chaos_->publish_failures();
  report_.refresh_retries = chaos_->refresh_retries();
  report_.storage_faults_fired = chaos_fs_->stats().faults_injected.load();

  if (report_.searches_ok + report_.searches_failed !=
      report_.searches_total) {
    Violation("search counters do not add up");
  }
  if (report_.failover_rpcs > report_.rpcs) {
    Violation("failover_rpcs exceeds total rpcs");
  }
  if (report_.degraded_queries > report_.searches_total) {
    Violation("degraded_queries exceeds searches issued");
  }
  if (report_.searches_compared > report_.searches_ok +
                                      options_.num_collections) {
    Violation("compared more searches than succeeded");
  }
  report_.availability =
      report_.searches_total == 0
          ? 1.0
          : static_cast<double>(report_.searches_ok) /
                static_cast<double>(report_.searches_total);
}

Result<ChaosReport> ChaosRunner::Run() {
  Timer timer;
  VDB_RETURN_NOT_OK(SetupClusters());
  VDB_RETURN_NOT_OK(Warmup());

  ChaosScheduleOptions schedule_options;
  schedule_options.seed = options_.seed;
  schedule_options.num_events = options_.num_events;
  schedule_options.num_collections = options_.num_collections;
  const ChaosSchedule schedule = ChaosSchedule::Generate(schedule_options);

  size_t trace_idx = 0;
  for (const ChaosEvent& event : schedule.events()) {
    if (std::getenv("VDB_CHAOS_TRACE") != nullptr) {
      std::fprintf(stderr, "[%zu] %s c=%zu arg=%llu\n", trace_idx++,
                   ChaosOpName(event.op), event.collection,
                   static_cast<unsigned long long>(event.arg));
    }
    switch (event.op) {
      case ChaosOp::kInsert: DoInsert(event); break;
      case ChaosOp::kDelete: DoDelete(event); break;
      case ChaosOp::kFlush: DoFlush(event); break;
      case ChaosOp::kSearch: DoSearch(event); break;
      case ChaosOp::kMaintenance: DoMaintenance(event); break;
      case ChaosOp::kCrashReader: DoCrashReader(); break;
      case ChaosOp::kRestartReader: DoRestartReader(); break;
      case ChaosOp::kAddReader: DoAddReader(); break;
      case ChaosOp::kRemoveReader: DoRemoveReader(); break;
      case ChaosOp::kCrashWriter: DoCrashWriter(); break;
      case ChaosOp::kRestartWriter: DoRestartWriter(); break;
      case ChaosOp::kInjectSearchFault: DoInjectSearchFault(event); break;
      case ChaosOp::kStorageFault: DoStorageFault(event); break;
      case ChaosOp::kIndexBuild: DoIndexBuild(event); break;
      case ChaosOp::kManifestFault: DoManifestFault(event); break;
    }
  }

  VDB_RETURN_NOT_OK(Heal());
  FinalAudit();
  CheckCounterConsistency();
  report_.wall_seconds = timer.ElapsedSeconds();
  return report_;
}

}  // namespace chaos
}  // namespace vectordb
