#ifndef VECTORDB_CHAOS_SCHEDULE_H_
#define VECTORDB_CHAOS_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace vectordb {
namespace chaos {

/// Everything the chaos runner can do to the cluster. Data-plane ops
/// interleave with control-plane churn and fault injection; the schedule
/// only fixes the *kind* of each event — targets (which reader, which row)
/// are resolved at execution time from the runner's seeded RNG, so the
/// whole run stays a pure function of the seed.
enum class ChaosOp {
  kInsert,
  kDelete,
  kFlush,
  kSearch,
  kMaintenance,
  kCrashReader,
  kRestartReader,
  kAddReader,
  kRemoveReader,
  kCrashWriter,
  kRestartWriter,
  kInjectSearchFault,
  kStorageFault,
  /// Out-of-band index build + publish on one tenant's collection.
  kIndexBuild,
  /// One-shot fault rule scoped to a tenant's manifest, then a publish
  /// attempt that has to survive (or cleanly fail) it.
  kManifestFault,
};

const char* ChaosOpName(ChaosOp op);

struct ChaosEvent {
  ChaosOp op = ChaosOp::kInsert;
  /// Index of the tenant collection the event targets (data-plane ops).
  size_t collection = 0;
  /// Free-form randomness for the executor (batch sizes, fault kinds,
  /// trigger offsets) so parameter draws don't perturb the main RNG stream.
  uint64_t arg = 0;
};

struct ChaosScheduleOptions {
  uint64_t seed = 42;
  size_t num_events = 500;
  size_t num_collections = 3;
};

/// Deterministic multi-tenant event stream: the same options always expand
/// to the same event vector. Weighted toward data-plane traffic so the
/// availability number reflects serving under churn, not churn itself.
class ChaosSchedule {
 public:
  static ChaosSchedule Generate(const ChaosScheduleOptions& options);

  const std::vector<ChaosEvent>& events() const { return events_; }
  size_t CountOf(ChaosOp op) const;
  /// Human-readable per-op histogram, for bench logs.
  std::string Summary() const;

 private:
  std::vector<ChaosEvent> events_;
};

}  // namespace chaos
}  // namespace vectordb

#endif  // VECTORDB_CHAOS_SCHEDULE_H_
