#include "chaos/invariants.h"

#include <cmath>

namespace vectordb {
namespace chaos {

namespace {

constexpr size_t kMaxViolationMessages = 16;

void AddViolation(std::vector<std::string>* violations, std::string message) {
  if (violations->size() < kMaxViolationMessages) {
    violations->push_back(std::move(message));
  }
}

}  // namespace

void InvariantChecker::RecordAckedInsert(const std::string& collection,
                                         RowId id, std::vector<float> vector) {
  CollectionModel& model = model_[collection];
  model.deleted.erase(id);
  model.live[id] = std::move(vector);
}

void InvariantChecker::RecordAckedDelete(const std::string& collection,
                                         RowId id) {
  CollectionModel& model = model_[collection];
  auto it = model.live.find(id);
  if (it == model.live.end()) return;
  model.deleted[id] = std::move(it->second);
  model.live.erase(it);
}

size_t InvariantChecker::num_live_rows(const std::string& collection) const {
  auto it = model_.find(collection);
  return it == model_.end() ? 0 : it->second.live.size();
}

std::optional<RowId> InvariantChecker::PickLiveRow(
    const std::string& collection, Rng* rng) const {
  auto it = model_.find(collection);
  if (it == model_.end() || it->second.live.empty()) return std::nullopt;
  size_t index = rng->NextUint64(it->second.live.size());
  auto row = it->second.live.begin();
  std::advance(row, index);
  return row->first;
}

bool InvariantChecker::SameHits(const std::vector<HitList>& got,
                                const std::vector<HitList>& want,
                                std::string* diff) {
  if (got.size() != want.size()) {
    *diff = "query count " + std::to_string(got.size()) + " vs " +
            std::to_string(want.size());
    return false;
  }
  for (size_t q = 0; q < got.size(); ++q) {
    if (got[q].size() != want[q].size()) {
      *diff = "query " + std::to_string(q) + ": " +
              std::to_string(got[q].size()) + " hits vs " +
              std::to_string(want[q].size());
      return false;
    }
    for (size_t i = 0; i < got[q].size(); ++i) {
      if (got[q][i].id != want[q][i].id ||
          got[q][i].score != want[q][i].score) {
        *diff = "query " + std::to_string(q) + " hit " + std::to_string(i) +
                ": id " + std::to_string(got[q][i].id) + " vs " +
                std::to_string(want[q][i].id);
        return false;
      }
    }
  }
  return true;
}

FinalSweepStats InvariantChecker::VerifyFinalState(
    dist::Cluster* cluster, const std::string& field,
    std::vector<std::string>* violations) const {
  FinalSweepStats stats;
  db::QueryOptions options;
  options.k = 1;
  for (const auto& [collection, model] : model_) {
    // Every acked live row must answer an exact self-probe: its own vector
    // is at L2 distance zero, so any other top-1 means the row is gone.
    for (const auto& [id, vector] : model.live) {
      ++stats.rows_checked;
      auto result = cluster->Search(collection, field, vector.data(), 1,
                                    options);
      const bool found = result.ok() && !result.value().empty() &&
                         !result.value()[0].empty() &&
                         result.value()[0][0].id == id;
      if (!found) {
        ++stats.acked_rows_lost;
        AddViolation(violations, "acked row lost: " + collection + "/" +
                                     std::to_string(id) +
                                     (result.ok()
                                          ? ""
                                          : " (" + result.status().ToString() +
                                                ")"));
      }
    }
    // Acked deletes must stay deleted: a self-probe answered by the deleted
    // id at distance ~0 means its tombstone was lost in recovery.
    for (const auto& [id, vector] : model.deleted) {
      auto result = cluster->Search(collection, field, vector.data(), 1,
                                    options);
      if (result.ok() && !result.value().empty() &&
          !result.value()[0].empty() && result.value()[0][0].id == id &&
          std::fabs(result.value()[0][0].score) < 1e-12f) {
        ++stats.deleted_rows_resurrected;
        AddViolation(violations, "deleted row resurrected: " + collection +
                                     "/" + std::to_string(id));
      }
    }
  }
  return stats;
}

}  // namespace chaos
}  // namespace vectordb
