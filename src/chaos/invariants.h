#ifndef VECTORDB_CHAOS_INVARIANTS_H_
#define VECTORDB_CHAOS_INVARIANTS_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "dist/cluster.h"

namespace vectordb {
namespace chaos {

/// Tally of the final durability sweep.
struct FinalSweepStats {
  size_t rows_checked = 0;
  /// Acked, never-deleted rows that the healed cluster cannot find — the
  /// zero-tolerance invariant.
  size_t acked_rows_lost = 0;
  /// Acked-deleted rows that reappeared after recovery (lost tombstones).
  size_t deleted_rows_resurrected = 0;
};

/// The chaos run's source of truth: which writes the cluster acknowledged,
/// with the exact vectors, so the healed cluster can be audited row by row.
/// Only *acked* operations enter the model — an insert that failed under a
/// fault owes the user nothing.
class InvariantChecker {
 public:
  void RecordAckedInsert(const std::string& collection, RowId id,
                         std::vector<float> vector);
  void RecordAckedDelete(const std::string& collection, RowId id);

  size_t num_live_rows(const std::string& collection) const;
  /// Deterministic uniform pick among the collection's live rows.
  std::optional<RowId> PickLiveRow(const std::string& collection,
                                   Rng* rng) const;

  /// Compare two merged top-k answers hit for hit. Returns true when equal;
  /// otherwise writes a bounded description of the first difference.
  static bool SameHits(const std::vector<HitList>& got,
                       const std::vector<HitList>& want, std::string* diff);

  /// Audit the healed, fully-flushed cluster: every acked live row must be
  /// findable by an exact nearest-neighbor probe with its own vector, and
  /// no acked-deleted row may answer such a probe with distance zero.
  /// Violation messages (bounded) are appended to `violations`.
  FinalSweepStats VerifyFinalState(dist::Cluster* cluster,
                                   const std::string& field,
                                   std::vector<std::string>* violations) const;

 private:
  struct CollectionModel {
    std::map<RowId, std::vector<float>> live;
    std::map<RowId, std::vector<float>> deleted;
  };
  std::map<std::string, CollectionModel> model_;
};

}  // namespace chaos
}  // namespace vectordb

#endif  // VECTORDB_CHAOS_INVARIANTS_H_
