#ifndef VECTORDB_CHAOS_RUNNER_H_
#define VECTORDB_CHAOS_RUNNER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/invariants.h"
#include "chaos/schedule.h"
#include "common/rng.h"
#include "dist/cluster.h"
#include "storage/fault_injection.h"

namespace vectordb {
namespace chaos {

struct ChaosRunnerOptions {
  uint64_t seed = 42;
  size_t num_events = 500;
  size_t num_collections = 3;
  size_t num_readers = 3;
  size_t replication_factor = 2;
  size_t dim = 8;
  /// Reader-pool ceiling for kAddReader events.
  size_t max_readers = 6;
  size_t search_k = 5;
  size_t search_nq = 2;
  /// Rows inserted and flushed per collection before chaos begins, so the
  /// first searches have something to serve.
  size_t warmup_rows = 16;
  /// Layer seeded FaultInjectionFileSystem rules (torn appends, bit-flipped
  /// reads, transient errors) on the shared storage during the run.
  bool storage_faults = true;
  /// Segment size at which kIndexBuild events publish an index. The chaos
  /// cluster builds kFlat indexes (bitwise-identical answers to a flat
  /// scan), so the index-free twin stays hit-for-hit comparable. Low enough
  /// that even warmup-sized segments get covered.
  size_t index_build_threshold_rows = 8;
};

/// Outcome of a chaos run. Every field except `wall_seconds` is a pure
/// function of the seed: two runs with identical options must produce
/// identical DeterministicFingerprint() strings — that equality is itself
/// one of the harness's invariants.
struct ChaosReport {
  uint64_t seed = 0;
  size_t events = 0;
  size_t collections = 0;
  size_t replication_factor = 0;

  // Data plane.
  size_t inserts_acked = 0;
  size_t inserts_rejected = 0;
  size_t deletes_acked = 0;
  size_t deletes_rejected = 0;
  size_t flushes_ok = 0;
  size_t flushes_failed = 0;
  size_t maintenance_ok = 0;
  size_t maintenance_failed = 0;
  size_t searches_total = 0;
  size_t searches_ok = 0;
  size_t searches_failed = 0;
  size_t searches_compared = 0;
  size_t wrong_result_queries = 0;

  // Control plane / injected chaos.
  size_t reader_crashes = 0;
  size_t reader_restarts = 0;
  size_t reader_restart_failures = 0;
  size_t readers_added = 0;
  size_t readers_removed = 0;
  size_t writer_crashes = 0;
  size_t writer_restarts = 0;
  size_t writer_restart_failures = 0;
  size_t search_faults_injected = 0;
  size_t storage_fault_rules = 0;
  size_t storage_faults_fired = 0;
  size_t index_builds_ok = 0;
  size_t index_builds_failed = 0;
  /// Indexes actually published across all successful kIndexBuild events.
  size_t indexes_built = 0;
  size_t manifest_fault_rules = 0;

  // Cluster availability accounting (per-instance counters).
  size_t rpcs = 0;
  size_t degraded_queries = 0;
  size_t failover_rpcs = 0;
  size_t publish_failures = 0;
  size_t refresh_retries = 0;

  // Final durability sweep.
  size_t final_rows_checked = 0;
  size_t acked_rows_lost = 0;
  size_t deleted_rows_resurrected = 0;

  /// searches_ok / searches_total (1.0 when no searches ran).
  double availability = 1.0;
  size_t invariant_violations = 0;
  std::vector<std::string> violations;

  /// Wall-clock time; the only field excluded from the fingerprint.
  double wall_seconds = 0.0;

  /// Canonical string over every deterministic field, for cross-run
  /// equality checks.
  std::string DeterministicFingerprint() const;
};

/// Drives a multi-tenant replicated Cluster through a seeded schedule of
/// interleaved data-plane traffic, node churn, and storage faults, while a
/// fault-free twin cluster mirrors every *acknowledged* write. Successful
/// searches are compared hit-for-hit against the twin whenever every reader
/// is on the latest published snapshot; at the end the cluster is healed and
/// audited row by row against the acked-write model.
class ChaosRunner {
 public:
  explicit ChaosRunner(const ChaosRunnerOptions& options);

  /// Execute the full run. Returns the report; a non-OK status means the
  /// harness itself could not run (setup failure), not that an invariant
  /// failed — invariant failures are reported in the ChaosReport.
  Result<ChaosReport> Run();

 private:
  std::string CollectionName(size_t index) const;
  std::vector<float> DrawVector();
  void Violation(std::string message);

  // Event executors (mirroring acked ops into the twin).
  void DoInsert(const ChaosEvent& event);
  void DoDelete(const ChaosEvent& event);
  void DoFlush(const ChaosEvent& event);
  void DoSearch(const ChaosEvent& event);
  void DoMaintenance(const ChaosEvent& event);
  void DoCrashReader();
  void DoRestartReader();
  void DoAddReader();
  void DoRemoveReader();
  void DoCrashWriter();
  void DoRestartWriter();
  void DoInjectSearchFault(const ChaosEvent& event);
  void DoStorageFault(const ChaosEvent& event);
  void DoIndexBuild(const ChaosEvent& event);
  void DoManifestFault(const ChaosEvent& event);

  Status SetupClusters();
  Status Warmup();
  /// Clear every fault source and bring all nodes back (end-of-run heal).
  Status Heal();
  void FinalAudit();
  void CheckCounterConsistency();
  /// True when `collection`'s readers all serve the latest published
  /// snapshot, i.e. chaos results are comparable to the twin.
  bool ComparisonEligible(size_t collection) const;

  ChaosRunnerOptions options_;
  ChaosReport report_;
  InvariantChecker checker_;
  /// Target/parameter draws; separate from the schedule's stream.
  Rng rng_;
  /// Query-vector draws; separate so search frequency doesn't shift write
  /// payloads between configurations.
  Rng query_rng_;

  std::shared_ptr<storage::FaultInjectionFileSystem> chaos_fs_;
  std::unique_ptr<dist::Cluster> chaos_;
  std::unique_ptr<dist::Cluster> twin_;

  std::vector<RowId> next_row_id_;
  /// Per collection: the writer has flushed state the readers were never
  /// offered (publish still pending), so chaos/twin comparison is off.
  std::vector<bool> publish_pending_;
  /// Names of crashed (restartable) readers, in crash order.
  std::vector<std::string> crashed_readers_;
};

}  // namespace chaos
}  // namespace vectordb

#endif  // VECTORDB_CHAOS_RUNNER_H_
