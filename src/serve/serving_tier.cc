#include "serve/serving_tier.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logger.h"
#include "obs/catalog.h"

namespace vectordb {
namespace serve {

namespace {

double SteadyNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ----- Ticket ---------------------------------------------------------------

Ticket::Ticket() = default;

const SearchReply& Ticket::Wait() {
  MutexLock lock(&mu_);
  while (!done_) cv_.Wait();
  return reply_;
}

bool Ticket::done() const {
  MutexLock lock(&mu_);
  return done_;
}

const SearchReply& Ticket::reply() const {
  MutexLock lock(&mu_);
  return reply_;
}

void Ticket::Complete(SearchReply reply) {
  {
    MutexLock lock(&mu_);
    reply_ = std::move(reply);
    done_ = true;
  }
  cv_.SignalAll();
}

// ----- ServingTier ----------------------------------------------------------

ServingTier::ServingTier(db::VectorDb* db, ServeOptions options)
    : db_(db),
      options_(std::move(options)),
      planner_(options_.max_batch_width) {
  obs::Serve();  // Register the family even before traffic arrives.
  if (options_.worker_threads > 0) {
    workers_ = std::make_unique<ThreadPool>(options_.worker_threads);
    for (size_t i = 0; i < options_.worker_threads; ++i) {
      workers_->Submit([this] { WorkerLoop(); });
    }
  }
}

ServingTier::~ServingTier() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  work_cv_.SignalAll();
  workers_.reset();  // Workers drain the queues, then join.
  // Manual mode (or a mid-shutdown race) can leave admitted tickets behind;
  // complete them so no caller blocks on a tier that no longer exists.
  std::vector<Queued> orphans;
  {
    MutexLock lock(&mu_);
    for (auto& [tenant, queue] : queues_) {
      for (auto& entry : queue) orphans.push_back(std::move(entry));
      queue.clear();
    }
    queued_count_ = 0;
    obs::Serve().queue_depth->Set(0.0);
    obs::Serve().in_flight->Set(static_cast<double>(executing_count_));
  }
  for (auto& entry : orphans) {
    SearchReply reply;
    reply.status = Status::Unavailable("serving tier shut down");
    entry.ticket->Complete(std::move(reply));
  }
}

double ServingTier::Now() const {
  return options_.clock ? options_.clock() : SteadyNow();
}

BatchKey ServingTier::KeyFor(const SearchRequest& request) {
  BatchKey key;
  key.collection = request.collection;
  key.field = request.field;
  key.dim = request.query.size();
  key.has_filter = request.has_filter;
  if (request.has_filter) {
    key.filter_attribute = request.filter_attribute;
    key.filter_lo = request.filter_range.lo;
    key.filter_hi = request.filter_range.hi;
  }
  key.k = request.options.k;
  key.nprobe = request.options.nprobe;
  key.ef_search = request.options.ef_search;
  key.theta = request.options.theta;
  key.timeout_seconds = request.options.timeout_seconds;
  return key;
}

Status ServingTier::ValidateRequest(const SearchRequest& request) const {
  if (request.query.empty()) {
    return Status::InvalidArgument("empty query vector");
  }
  VDB_RETURN_NOT_OK(exec::ValidateQueryOptions(request.options, 1));
  db::Collection* collection = db_->GetCollection(request.collection);
  if (collection == nullptr) {
    return Status::NotFound("unknown collection: " + request.collection);
  }
  for (const auto& field : collection->schema().vector_fields) {
    if (field.name != request.field) continue;
    if (field.dim != request.query.size()) {
      return Status::InvalidArgument(
          "query dimension mismatch for field: " + request.field);
    }
    return Status::OK();
  }
  return Status::NotFound("unknown vector field: " + request.field);
}

bool ServingTier::TakeToken(const db::TenantQuota& quota, Bucket* bucket,
                            double* retry_after) {
  if (quota.rate_qps <= 0.0) return true;  // Unlimited tenant.
  const double burst =
      quota.burst > 0.0 ? quota.burst : std::max(1.0, quota.rate_qps);
  const double now = Now();
  if (!bucket->primed) {
    bucket->tokens = burst;
    bucket->last_refill = now;
    bucket->primed = true;
  } else if (now > bucket->last_refill) {
    bucket->tokens = std::min(
        burst, bucket->tokens + (now - bucket->last_refill) * quota.rate_qps);
    bucket->last_refill = now;
  }
  if (bucket->tokens >= 1.0) {
    bucket->tokens -= 1.0;
    return true;
  }
  *retry_after = std::max(options_.retry_after_floor_seconds,
                          (1.0 - bucket->tokens) / quota.rate_qps);
  return false;
}

TicketPtr ServingTier::Submit(SearchRequest request) {
  auto ticket = std::make_shared<Ticket>();
  obs::Serve().submitted->Inc();

  // Validation and the quota lookup happen before the scheduler lock: both
  // take lower-ranked locks (catalog, tenant table), and a malformed query
  // must be rejected alone rather than poisoning a batch later.
  const Status valid = ValidateRequest(request);
  if (!valid.ok()) {
    SearchReply reply;
    reply.status = valid;
    ticket->Complete(std::move(reply));
    return ticket;
  }
  const db::TenantQuota quota = db_->TenantQuotaFor(request.tenant);
  const size_t queue_cap = quota.max_queued > 0
                               ? quota.max_queued
                               : options_.default_max_queued_per_tenant;

  Status reject;
  double retry_after = options_.retry_after_floor_seconds;
  {
    MutexLock lock(&mu_);
    if (stopping_) {
      reject = Status::Unavailable("serving tier shutting down");
    } else if (queued_count_ + executing_count_ >= options_.max_in_flight) {
      obs::Serve().rejected_inflight->Inc();
      reject = Status::ResourceExhausted("serving tier at capacity");
    } else if (queues_[request.tenant].size() >= queue_cap) {
      obs::Serve().rejected_queue->Inc();
      reject = Status::ResourceExhausted("tenant queue full: " +
                                         request.tenant);
    } else if (!TakeToken(quota, &buckets_[request.tenant], &retry_after)) {
      obs::Serve().rejected_rate->Inc();
      reject = Status::ResourceExhausted("tenant rate limit: " +
                                         request.tenant);
    } else {
      Queued entry;
      entry.seq = next_seq_++;
      entry.admit_time = Now();
      entry.request = std::move(request);
      entry.ticket = ticket;
      queues_[entry.request.tenant].push_back(std::move(entry));
      ++queued_count_;
      obs::Serve().admitted->Inc();
      obs::Serve().queue_depth->Set(static_cast<double>(queued_count_));
      obs::Serve().in_flight->Set(
          static_cast<double>(queued_count_ + executing_count_));
    }
  }
  if (!reject.ok()) {
    SearchReply reply;
    reply.status = reject;
    if (reject.IsResourceExhausted()) reply.retry_after_seconds = retry_after;
    ticket->Complete(std::move(reply));
    return ticket;
  }
  work_cv_.Signal();
  return ticket;
}

SearchReply ServingTier::Search(SearchRequest request) {
  return Submit(std::move(request))->Wait();
}

bool ServingTier::PlanBatchLocked(Batch* batch) {
  if (queued_count_ == 0) return false;

  // Flatten the queues into admission-seq order and pick the round-robin
  // leader: the head of the first non-empty tenant queue after the cursor.
  std::vector<BatchCandidate> candidates;
  std::vector<std::pair<std::string, size_t>> where;  // tenant, queue index
  candidates.reserve(queued_count_);
  for (const auto& [tenant, queue] : queues_) {
    for (size_t i = 0; i < queue.size(); ++i) {
      candidates.push_back({queue[i].seq, KeyFor(queue[i].request)});
      where.emplace_back(tenant, i);
    }
  }
  std::vector<size_t> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return candidates[a].seq < candidates[b].seq;
  });
  std::vector<BatchCandidate> sorted;
  std::vector<std::pair<std::string, size_t>> sorted_where;
  sorted.reserve(order.size());
  for (size_t i : order) {
    sorted.push_back(candidates[i]);
    sorted_where.push_back(where[i]);
  }

  // Round-robin leader tenant: first non-empty queue strictly after the
  // cursor, wrapping, so every tenant's head gets a turn under contention.
  auto it = queues_.upper_bound(rr_cursor_);
  for (size_t step = 0; step <= queues_.size(); ++step, ++it) {
    if (it == queues_.end()) it = queues_.begin();
    if (!it->second.empty()) break;
  }
  const std::string leader_tenant = it->first;
  const uint64_t leader_seq = it->second.front().seq;
  size_t leader_index = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i].seq == leader_seq) leader_index = i;
  }

  const std::vector<size_t> picked = planner_.Plan(sorted, leader_index);
  if (picked.empty()) return false;

  // Move the selected entries out of their queues (seqs are unique, so a
  // per-tenant sweep over the picked seq set is exact).
  std::map<std::string, std::vector<uint64_t>> picked_seqs;
  for (size_t i : picked) {
    picked_seqs[sorted_where[i].first].push_back(sorted[i].seq);
  }
  batch->entries.clear();
  for (auto& [tenant, seqs] : picked_seqs) {
    auto& queue = queues_[tenant];
    std::deque<Queued> keep;
    for (auto& entry : queue) {
      if (std::find(seqs.begin(), seqs.end(), entry.seq) != seqs.end()) {
        batch->entries.push_back(std::move(entry));
      } else {
        keep.push_back(std::move(entry));
      }
    }
    queue.swap(keep);
  }
  // Batches execute in admission order regardless of tenant map order.
  std::sort(batch->entries.begin(), batch->entries.end(),
            [](const Queued& a, const Queued& b) { return a.seq < b.seq; });

  rr_cursor_ = leader_tenant;
  queued_count_ -= batch->entries.size();
  executing_count_ += batch->entries.size();
  obs::Serve().queue_depth->Set(static_cast<double>(queued_count_));
  return true;
}

void ServingTier::ExecuteBatch(Batch batch) {
  const size_t nq = batch.entries.size();
  const double exec_start = Now();
  const SearchRequest& lead = batch.entries.front().request;
  const size_t dim = lead.query.size();

  // One contiguous query block: the executor scans each segment once for
  // the whole batch.
  std::vector<float> block(nq * dim);
  for (size_t i = 0; i < nq; ++i) {
    std::copy(batch.entries[i].request.query.begin(),
              batch.entries[i].request.query.end(),
              block.begin() + i * dim);
  }

  exec::QueryStats stats;
  Status status;
  std::vector<HitList> lists;
  db::Collection* collection = db_->GetCollection(lead.collection);
  if (collection == nullptr) {
    status = Status::NotFound("collection dropped: " + lead.collection);
  } else if (lead.has_filter) {
    auto result = collection->SearchFilteredBatch(
        lead.field, block.data(), nq, lead.filter_attribute,
        lead.filter_range, lead.options, &stats);
    if (result.ok()) {
      lists = std::move(result).value();
    } else {
      status = result.status();
    }
  } else {
    auto result =
        collection->Search(lead.field, block.data(), nq, lead.options, &stats);
    if (result.ok()) {
      lists = std::move(result).value();
    } else {
      status = result.status();
    }
  }

  obs::Serve().batches->Inc();
  obs::Serve().batch_width->Observe(static_cast<double>(nq));
  if (nq > 1) obs::Serve().batched_queries->Inc(nq);

  // Release the admission budget before completing tickets: execution is
  // over, so capacity frees as soon as possible, and a client observing its
  // ticket done is guaranteed to see the budget already returned.
  {
    MutexLock lock(&mu_);
    executing_count_ -= nq;
    obs::Serve().in_flight->Set(
        static_cast<double>(queued_count_ + executing_count_));
  }

  const double done = Now();
  for (size_t i = 0; i < nq; ++i) {
    SearchReply reply;
    reply.status = status;
    if (status.ok() && i < lists.size()) reply.hits = std::move(lists[i]);
    reply.stats = stats;
    reply.queue_seconds =
        std::max(0.0, exec_start - batch.entries[i].admit_time);
    reply.batch_width = nq;
    obs::Serve().queue_seconds->Observe(reply.queue_seconds);
    obs::Serve().serve_seconds->Observe(
        std::max(0.0, done - batch.entries[i].admit_time));
    batch.entries[i].ticket->Complete(std::move(reply));
  }
}

void ServingTier::WorkerLoop() {
  while (true) {
    Batch batch;
    {
      MutexLock lock(&mu_);
      while (queued_count_ == 0 && !stopping_) work_cv_.Wait();
      if (queued_count_ == 0 && stopping_) return;
      if (!PlanBatchLocked(&batch)) continue;
    }
    ExecuteBatch(std::move(batch));
  }
}

bool ServingTier::PumpOnce() {
  Batch batch;
  {
    MutexLock lock(&mu_);
    if (!PlanBatchLocked(&batch)) return false;
  }
  ExecuteBatch(std::move(batch));
  return true;
}

size_t ServingTier::queue_depth() const {
  MutexLock lock(&mu_);
  return queued_count_;
}

size_t ServingTier::in_flight() const {
  MutexLock lock(&mu_);
  return queued_count_ + executing_count_;
}

}  // namespace serve
}  // namespace vectordb
