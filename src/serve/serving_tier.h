#ifndef VECTORDB_SERVE_SERVING_TIER_H_
#define VECTORDB_SERVE_SERVING_TIER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/threadpool.h"
#include "db/vector_db.h"
#include "serve/batch_planner.h"

namespace vectordb {
namespace serve {

/// One search as submitted to the admission gate. The tier owns a copy of
/// the query vector so callers (REST handlers, SDK clients) can return
/// before execution starts.
struct SearchRequest {
  std::string tenant;      ///< "" = the default tenant.
  std::string collection;
  std::string field;
  std::vector<float> query;
  db::QueryOptions options;
  bool has_filter = false;
  std::string filter_attribute;
  query::AttrRange filter_range;
};

/// The completed (or rejected) outcome of one submitted search.
struct SearchReply {
  Status status;
  HitList hits;
  /// Execution counters of the batch this query rode in (segments scanned
  /// once per batch, so batched queries share the same fan-out numbers).
  exec::QueryStats stats;
  /// Set when status is ResourceExhausted: the scheduler's hint for when
  /// capacity should be available again (REST surfaces it as Retry-After).
  double retry_after_seconds = 0.0;
  double queue_seconds = 0.0;  ///< Admission to execution-start wait.
  size_t batch_width = 0;      ///< Queries coalesced into the shared scan.
};

struct ServeOptions {
  /// Batch-executing workers. 0 = manual mode: nothing executes until the
  /// caller drives PumpOnce() — the deterministic-test configuration.
  size_t worker_threads = 2;
  /// Global admission budget: queries queued or executing. Submissions
  /// beyond it are rejected immediately (typed ResourceExhausted), never
  /// queued unboundedly.
  size_t max_in_flight = 256;
  /// Queries coalesced into one shared segment scan.
  size_t max_batch_width = 16;
  /// Per-tenant queue cap for tenants whose quota leaves max_queued at 0.
  size_t default_max_queued_per_tenant = 64;
  /// Lower bound on every retry-after hint.
  double retry_after_floor_seconds = 0.01;
  /// Monotonic seconds for token buckets and latency stats. Null = steady
  /// clock; tests inject a manual clock for deterministic admission.
  std::function<double()> clock;
};

/// Completion handle for one submitted search. Tickets are shared-ownership
/// so they stay valid however the caller and the tier interleave; the state
/// carries its own mutex (rank kServeTicket) — completion never touches the
/// scheduler lock.
class Ticket {
 public:
  Ticket();
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;

  /// Block until the reply is ready (immediately for rejected tickets),
  /// then return it. The reference stays valid for the ticket's lifetime.
  const SearchReply& Wait();

  bool done() const;
  /// The reply; only valid once done().
  const SearchReply& reply() const;

 private:
  friend class ServingTier;
  void Complete(SearchReply reply);

  mutable Mutex mu_{VDB_LOCK_RANK(kServeTicket)};
  CondVar cv_{&mu_};
  bool done_ VDB_GUARDED_BY(mu_) = false;
  SearchReply reply_ VDB_GUARDED_BY(mu_);
};
using TicketPtr = std::shared_ptr<Ticket>;

/// The admission-controlled serving tier (the query front door): per-tenant
/// token-bucket rate limits and queue caps, a global in-flight budget that
/// rejects early instead of queueing unboundedly, and a batch planner that
/// coalesces compatible queued queries into shared segment scans. Batched
/// results are bitwise identical to per-query execution.
class ServingTier {
 public:
  ServingTier(db::VectorDb* db, ServeOptions options);
  ~ServingTier();

  ServingTier(const ServingTier&) = delete;
  ServingTier& operator=(const ServingTier&) = delete;

  /// Admission gate. Always returns a ticket: rejected submissions come
  /// back already completed with a typed ResourceExhausted reply carrying
  /// retry_after_seconds. Malformed requests (unknown collection, wrong
  /// dimension, bad options) are rejected here too, so they can never
  /// poison a batch.
  TicketPtr Submit(SearchRequest request) VDB_EXCLUDES(mu_);

  /// Submit and wait: the synchronous entry point used by the SDK and the
  /// REST handler. Requires worker_threads > 0 (manual mode would block
  /// forever with nobody pumping).
  SearchReply Search(SearchRequest request) VDB_EXCLUDES(mu_);

  /// Manual mode: plan one batch from the queues and execute it on the
  /// calling thread. Returns false when nothing was queued. Also usable
  /// with workers running (it competes for queued work like a worker).
  bool PumpOnce() VDB_EXCLUDES(mu_);

  size_t queue_depth() const VDB_EXCLUDES(mu_);  ///< Admitted, not started.
  size_t in_flight() const VDB_EXCLUDES(mu_);    ///< Queued + executing.

  const ServeOptions& options() const { return options_; }

 private:
  /// One admitted query waiting in its tenant queue.
  struct Queued {
    uint64_t seq = 0;
    double admit_time = 0.0;
    SearchRequest request;
    TicketPtr ticket;
  };

  /// Token bucket tracking one tenant's admission rate.
  struct Bucket {
    double tokens = 0.0;
    double last_refill = 0.0;
    bool primed = false;  ///< First admission initializes the bucket full.
  };

  /// A planned batch, popped from the queues and owned by the executor.
  struct Batch {
    std::vector<Queued> entries;
  };

  double Now() const;
  static BatchKey KeyFor(const SearchRequest& request);

  /// Validate a request against the live catalog; failures reject alone.
  Status ValidateRequest(const SearchRequest& request) const;

  /// Refill + take one token; on failure returns the seconds until the
  /// bucket earns the next token.
  bool TakeToken(const db::TenantQuota& quota, Bucket* bucket,
                 double* retry_after) VDB_REQUIRES(mu_);

  /// Pop the next batch: round-robin over tenants for the leader, then
  /// coalesce compatible queries across all queues in admission order.
  bool PlanBatchLocked(Batch* batch) VDB_REQUIRES(mu_);

  /// Execute a planned batch (no scheduler lock held) and complete its
  /// tickets; then retire the batch from the in-flight count.
  void ExecuteBatch(Batch batch) VDB_EXCLUDES(mu_);

  void WorkerLoop() VDB_EXCLUDES(mu_);

  db::VectorDb* const db_;
  const ServeOptions options_;
  BatchPlanner planner_;

  mutable Mutex mu_{VDB_LOCK_RANK(kServeScheduler)};
  CondVar work_cv_{&mu_};
  std::map<std::string, std::deque<Queued>> queues_ VDB_GUARDED_BY(mu_);
  std::map<std::string, Bucket> buckets_ VDB_GUARDED_BY(mu_);
  /// Round-robin cursor: the tenant served last; the next leader is the
  /// first non-empty queue strictly after it (wrapping).
  std::string rr_cursor_ VDB_GUARDED_BY(mu_);
  uint64_t next_seq_ VDB_GUARDED_BY(mu_) = 0;
  size_t queued_count_ VDB_GUARDED_BY(mu_) = 0;
  size_t executing_count_ VDB_GUARDED_BY(mu_) = 0;
  bool stopping_ VDB_GUARDED_BY(mu_) = false;

  /// Hosts the long-lived worker loops; reset in the destructor to join.
  std::unique_ptr<ThreadPool> workers_;
};

}  // namespace serve
}  // namespace vectordb

#endif  // VECTORDB_SERVE_SERVING_TIER_H_
