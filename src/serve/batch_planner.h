#ifndef VECTORDB_SERVE_BATCH_PLANNER_H_
#define VECTORDB_SERVE_BATCH_PLANNER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "exec/query_context.h"
#include "query/filter_strategies.h"

namespace vectordb {
namespace serve {

/// The compatibility key for coalescing queued queries into one shared
/// segment scan. Two queries may ride the same batch only when every field
/// below matches: they then hit the same collection snapshot, the same
/// vector field, the same filter bitmap, and identical execution knobs, so
/// the batched per-query results are bitwise identical to running each
/// query alone (the executor's candidate collection, strategy choice, and
/// merge order never depend on the query vector).
struct BatchKey {
  std::string collection;
  std::string field;
  size_t dim = 0;  ///< Queries of the wrong dimension fail alone.
  bool has_filter = false;
  std::string filter_attribute;
  double filter_lo = 0.0;
  double filter_hi = 0.0;
  // Execution knobs (exec::QueryOptions) — all of them shape the scan.
  size_t k = 0;
  size_t nprobe = 0;
  size_t ef_search = 0;
  double theta = 0.0;
  double timeout_seconds = 0.0;

  bool operator==(const BatchKey& other) const = default;
};

/// One admitted query as the planner sees it: its admission sequence number
/// (global, monotonically increasing) and its compatibility key.
struct BatchCandidate {
  uint64_t seq = 0;
  BatchKey key;
};

/// Pure batch-selection logic, separated from the scheduler's locking so it
/// is unit-testable: given the queued candidates in admission-seq order and
/// the round-robin leader, pick the queries that share the leader's batch.
class BatchPlanner {
 public:
  explicit BatchPlanner(size_t max_batch_width)
      : max_batch_width_(max_batch_width == 0 ? 1 : max_batch_width) {}

  size_t max_batch_width() const { return max_batch_width_; }

  /// Select up to max_batch_width indices into `candidates` (which must be
  /// sorted by seq) whose key equals the leader's, oldest first. The leader
  /// is always included: if older compatible queries fill the batch, the
  /// newest non-leader selection is dropped to make room, so the round-robin
  /// fairness guarantee (the chosen tenant's head executes now) holds.
  std::vector<size_t> Plan(const std::vector<BatchCandidate>& candidates,
                           size_t leader_index) const;

 private:
  size_t max_batch_width_;
};

}  // namespace serve
}  // namespace vectordb

#endif  // VECTORDB_SERVE_BATCH_PLANNER_H_
