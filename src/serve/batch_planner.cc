#include "serve/batch_planner.h"

#include <algorithm>

namespace vectordb {
namespace serve {

std::vector<size_t> BatchPlanner::Plan(
    const std::vector<BatchCandidate>& candidates, size_t leader_index) const {
  std::vector<size_t> picked;
  if (leader_index >= candidates.size()) return picked;
  const BatchKey& key = candidates[leader_index].key;
  bool leader_in = false;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!(candidates[i].key == key)) continue;
    if (picked.size() == max_batch_width_) {
      if (i > leader_index) break;  // Batch full before reaching the leader.
      continue;
    }
    picked.push_back(i);
    if (i == leader_index) leader_in = true;
  }
  if (!leader_in) {
    // Older compatible queries filled the batch; evict the newest so the
    // round-robin leader still executes in this round.
    picked.back() = leader_index;
  }
  return picked;
}

}  // namespace serve
}  // namespace vectordb
