#ifndef VECTORDB_CLUSTER_KMEANS_H_
#define VECTORDB_CLUSTER_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace vectordb {
namespace cluster {

struct KMeansOptions {
  size_t num_clusters = 16;
  size_t max_iterations = 20;
  /// Training subsample cap: at most this many points per centroid are used
  /// for Lloyd iterations (Faiss-style); 0 disables subsampling.
  size_t max_points_per_centroid = 256;
  uint64_t seed = 42;
  /// Stop early when the relative improvement of the objective falls below
  /// this threshold.
  double tolerance = 1e-4;
};

/// Result of a k-means run: row-major centroids and the final objective.
struct KMeansResult {
  std::vector<float> centroids;  ///< num_clusters × dim, row-major.
  size_t num_clusters = 0;
  size_t dim = 0;
  double objective = 0.0;  ///< Sum of squared distances to assigned centroid.
  size_t iterations_run = 0;
};

/// Lloyd's k-means with k-means++ seeding and empty-cluster splitting.
/// `data` is n × dim row-major. Requires n >= options.num_clusters.
Result<KMeansResult> RunKMeans(const float* data, size_t n, size_t dim,
                               const KMeansOptions& options);

/// Index of the centroid nearest to `vec` (L2). `centroids` is k × dim.
size_t NearestCentroid(const float* vec, const float* centroids, size_t k,
                       size_t dim);

/// Indices of the `nprobe` nearest centroids, nearest first.
std::vector<size_t> NearestCentroids(const float* vec, const float* centroids,
                                     size_t k, size_t dim, size_t nprobe);

}  // namespace cluster
}  // namespace vectordb

#endif  // VECTORDB_CLUSTER_KMEANS_H_
