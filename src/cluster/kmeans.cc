#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "common/result_heap.h"
#include "common/rng.h"
#include "simd/distances.h"

namespace vectordb {
namespace cluster {

namespace {

/// k-means++ seeding: pick the first centroid uniformly, then each next one
/// with probability proportional to D², the squared distance to the nearest
/// already-chosen centroid.
std::vector<size_t> KMeansPlusPlusSeed(const float* data, size_t n,
                                       size_t dim, size_t k, Rng* rng) {
  std::vector<size_t> chosen;
  chosen.reserve(k);
  std::vector<double> dist2(n, std::numeric_limits<double>::max());

  chosen.push_back(rng->NextUint64(n));
  for (size_t c = 1; c < k; ++c) {
    const float* last = data + chosen.back() * dim;
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = simd::L2Sqr(data + i * dim, last, dim);
      if (d < dist2[i]) dist2[i] = d;
      total += dist2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids; pick uniformly.
      chosen.push_back(rng->NextUint64(n));
      continue;
    }
    double target = rng->NextDouble() * total;
    size_t pick = n - 1;
    for (size_t i = 0; i < n; ++i) {
      target -= dist2[i];
      if (target <= 0.0) {
        pick = i;
        break;
      }
    }
    chosen.push_back(pick);
  }
  return chosen;
}

}  // namespace

size_t NearestCentroid(const float* vec, const float* centroids, size_t k,
                       size_t dim) {
  size_t best = 0;
  float best_dist = std::numeric_limits<float>::max();
  for (size_t c = 0; c < k; ++c) {
    const float d = simd::L2Sqr(vec, centroids + c * dim, dim);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return best;
}

std::vector<size_t> NearestCentroids(const float* vec, const float* centroids,
                                     size_t k, size_t dim, size_t nprobe) {
  nprobe = std::min(nprobe, k);
  ResultHeap heap(nprobe, /*keep_largest=*/false);
  for (size_t c = 0; c < k; ++c) {
    heap.Push(static_cast<RowId>(c), simd::L2Sqr(vec, centroids + c * dim, dim));
  }
  HitList hits = heap.TakeSorted();
  std::vector<size_t> out;
  out.reserve(hits.size());
  for (const auto& h : hits) out.push_back(static_cast<size_t>(h.id));
  return out;
}

Result<KMeansResult> RunKMeans(const float* data, size_t n, size_t dim,
                               const KMeansOptions& options) {
  const size_t k = options.num_clusters;
  if (k == 0 || dim == 0) {
    return Status::InvalidArgument("k-means requires k > 0 and dim > 0");
  }
  if (n < k) {
    return Status::InvalidArgument("k-means requires n >= num_clusters");
  }

  Rng rng(options.seed);

  // Optional training subsample (Faiss-style cap per centroid).
  std::vector<float> sample_storage;
  const float* train = data;
  size_t train_n = n;
  if (options.max_points_per_centroid != 0) {
    const size_t cap = options.max_points_per_centroid * k;
    if (n > cap) {
      std::vector<size_t> perm(n);
      std::iota(perm.begin(), perm.end(), size_t{0});
      std::shuffle(perm.begin(), perm.end(), rng.engine());
      sample_storage.resize(cap * dim);
      for (size_t i = 0; i < cap; ++i) {
        std::memcpy(sample_storage.data() + i * dim, data + perm[i] * dim,
                    dim * sizeof(float));
      }
      train = sample_storage.data();
      train_n = cap;
    }
  }

  KMeansResult result;
  result.num_clusters = k;
  result.dim = dim;
  result.centroids.resize(k * dim);

  const std::vector<size_t> seeds =
      KMeansPlusPlusSeed(train, train_n, dim, k, &rng);
  for (size_t c = 0; c < k; ++c) {
    std::memcpy(result.centroids.data() + c * dim, train + seeds[c] * dim,
                dim * sizeof(float));
  }

  std::vector<size_t> assignment(train_n, 0);
  std::vector<size_t> counts(k, 0);
  std::vector<double> sums(k * dim, 0.0);
  double prev_objective = std::numeric_limits<double>::max();

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment step.
    double objective = 0.0;
    for (size_t i = 0; i < train_n; ++i) {
      const size_t c =
          NearestCentroid(train + i * dim, result.centroids.data(), k, dim);
      assignment[i] = c;
      objective +=
          simd::L2Sqr(train + i * dim, result.centroids.data() + c * dim, dim);
    }
    result.objective = objective;
    result.iterations_run = iter + 1;

    // Update step.
    std::fill(counts.begin(), counts.end(), size_t{0});
    std::fill(sums.begin(), sums.end(), 0.0);
    for (size_t i = 0; i < train_n; ++i) {
      const size_t c = assignment[i];
      ++counts[c];
      const float* v = train + i * dim;
      double* s = sums.data() + c * dim;
      for (size_t j = 0; j < dim; ++j) s[j] += v[j];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      float* cent = result.centroids.data() + c * dim;
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (size_t j = 0; j < dim; ++j) {
        cent[j] = static_cast<float>(sums[c * dim + j] * inv);
      }
    }

    // Empty-cluster handling: re-seed from the largest cluster, nudged.
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] != 0) continue;
      const size_t donor = static_cast<size_t>(
          std::max_element(counts.begin(), counts.end()) - counts.begin());
      const float* donor_cent = result.centroids.data() + donor * dim;
      float* cent = result.centroids.data() + c * dim;
      for (size_t j = 0; j < dim; ++j) {
        cent[j] = donor_cent[j] * (1.0f + 1e-4f * (rng.NextFloat() - 0.5f));
      }
      counts[c] = 1;  // Avoid repeated donation from the same pass.
    }

    if (prev_objective < std::numeric_limits<double>::max()) {
      const double improvement =
          (prev_objective - objective) / std::max(prev_objective, 1e-30);
      if (improvement >= 0.0 && improvement < options.tolerance) break;
    }
    prev_objective = objective;
  }

  return result;
}

}  // namespace cluster
}  // namespace vectordb
