#ifndef VECTORDB_API_JSON_H_
#define VECTORDB_API_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace vectordb {
namespace api {

/// Minimal JSON value for the RESTful API layer (Sec 2.1): objects, arrays,
/// strings, doubles, booleans, null. Numbers are stored as double — ample
/// for ids/dims at this scale and faithful to JavaScript JSON.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}          // NOLINT
  Json(double n) : type_(Type::kNumber), number_(n) {}    // NOLINT
  Json(int n) : Json(static_cast<double>(n)) {}           // NOLINT
  Json(int64_t n) : Json(static_cast<double>(n)) {}       // NOLINT
  Json(size_t n) : Json(static_cast<double>(n)) {}        // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }

  // Array access.
  size_t size() const { return array_.size(); }
  const Json& at(size_t i) const { return array_[i]; }
  void Append(Json value) { array_.push_back(std::move(value)); }

  // Object access.
  bool Has(const std::string& key) const { return object_.count(key) != 0; }
  /// Missing keys return a shared null (safe chained lookups).
  const Json& operator[](const std::string& key) const;
  void Set(const std::string& key, Json value) {
    object_[key] = std::move(value);
  }
  const std::map<std::string, Json>& object_items() const { return object_; }

  /// Compact serialization.
  std::string Dump() const;

  /// Strict-ish parser; trailing garbage is an error.
  static Result<Json> Parse(const std::string& text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace api
}  // namespace vectordb

#endif  // VECTORDB_API_JSON_H_
