#ifndef VECTORDB_API_REST_HANDLER_H_
#define VECTORDB_API_REST_HANDLER_H_

#include <string>
#include <utility>
#include <vector>

#include "api/json.h"
#include "db/vector_db.h"
#include "serve/serving_tier.h"

namespace vectordb {
namespace dist {
class Cluster;
}  // namespace dist

namespace api {

/// A REST response: HTTP-style status code plus either a JSON body (the
/// default) or a raw text body with an explicit content type (used by the
/// Prometheus /metrics exposition), and any extra response headers (e.g.
/// Retry-After on admission rejections).
struct RestResponse {
  int status = 200;
  Json body = Json::Object();
  /// Non-empty iff the response is plain text rather than JSON.
  std::string text;
  std::string content_type = "application/json";
  /// Extra headers beyond Content-Type, in emit order.
  std::vector<std::pair<std::string, std::string>> headers;

  bool ok() const { return status >= 200 && status < 300; }
};

/// The single Status -> HTTP status mapping used by every route:
///   OK → 200, NotFound → 404, AlreadyExists → 409, InvalidArgument /
///   NotSupported → 400, ResourceExhausted (admission/quota) → 429,
///   Unavailable → 503, Aborted (query deadline) → 504, else → 500.
int HttpStatusFor(const Status& status);

/// Stable wire name for a status code, used as error.code in the JSON
/// error schema: "NotFound", "ResourceExhausted", ...
const char* StatusCodeName(Status::Code code);

/// Every non-2xx response carries this one versioned error shape:
///   {"error": {"code": "<StatusCodeName>", "message": "...",
///              "retryable": <bool>}}
/// `retryable` mirrors Status::IsTransient() so clients can implement
/// backoff without parsing message text. Built by the single mapping point
/// next to HttpStatusFor; no route hand-rolls an error body.
Json ErrorBody(const Status& status);

/// Transport-agnostic RESTful request router (Sec 2.1: "Milvus also
/// supports RESTful APIs for web applications"). Any HTTP server can
/// delegate `(method, path, body)` here; tests and embedded callers invoke
/// it directly. Routes are versioned under /v1; the unversioned legacy
/// paths are accepted via a single rewrite and serve the same table.
///
///   GET    /v1/metrics                              → Prometheus exposition
///   GET    /v1/cluster/health                       → node liveness + the
///                                                     vdb_dist availability
///                                                     counters (503 while
///                                                     the cluster cannot
///                                                     serve)
///   GET    /v1/collections                          → list collections
///   POST   /v1/collections                          → create (schema in body)
///   DELETE /v1/collections/{name}                   → drop
///   GET    /v1/collections/{name}                   → stats + metric slice
///   POST   /v1/collections/{name}/entities          → insert one entity
///   DELETE /v1/collections/{name}/entities/{id}     → delete by id
///   GET    /v1/collections/{name}/entities/{id}     → point lookup
///   POST   /v1/collections/{name}/flush             → flush
///   POST   /v1/collections/{name}/search            → vector / filtered /
///                                                     multi-vector search
class RestHandler {
 public:
  explicit RestHandler(db::VectorDb* db) : db_(db) {}

  /// Attach a distributed deployment: /v1/cluster/health starts reporting
  /// its liveness and availability counters. Without one the route answers
  /// 200 {"mode": "standalone"} so probes work in both deployments.
  void set_cluster(dist::Cluster* cluster) { cluster_ = cluster; }

  /// Attach a serving tier: single-vector /search requests (filtered or
  /// not) go through its admission gate. The body may carry "tenant" for
  /// per-tenant quotas; admission rejections answer 429 with a Retry-After
  /// header from the scheduler's hint.
  void set_serving(serve::ServingTier* serving) { serving_ = serving; }

  RestResponse Handle(const std::string& method, const std::string& path,
                      const std::string& body);

 private:
  RestResponse Metrics();
  RestResponse ClusterHealth();
  RestResponse ListCollections();
  RestResponse CreateCollection(const Json& body);
  RestResponse DropCollection(const std::string& name);
  RestResponse CollectionStats(const std::string& name);
  RestResponse InsertEntity(const std::string& name, const Json& body);
  RestResponse DeleteEntity(const std::string& name, const std::string& id);
  RestResponse GetEntity(const std::string& name, const std::string& id);
  RestResponse Flush(const std::string& name);
  RestResponse Search(const std::string& name, const Json& body);

  db::VectorDb* db_;
  dist::Cluster* cluster_ = nullptr;  ///< Optional; standalone when null.
  serve::ServingTier* serving_ = nullptr;  ///< Optional admission gate.
};

}  // namespace api
}  // namespace vectordb

#endif  // VECTORDB_API_REST_HANDLER_H_
