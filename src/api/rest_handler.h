#ifndef VECTORDB_API_REST_HANDLER_H_
#define VECTORDB_API_REST_HANDLER_H_

#include <string>

#include "api/json.h"
#include "db/vector_db.h"

namespace vectordb {
namespace api {

/// A REST response: HTTP-style status code plus a JSON body.
struct RestResponse {
  int status = 200;
  Json body = Json::Object();

  bool ok() const { return status >= 200 && status < 300; }
};

/// Transport-agnostic RESTful request router (Sec 2.1: "Milvus also
/// supports RESTful APIs for web applications"). Any HTTP server can
/// delegate `(method, path, body)` here; tests and embedded callers invoke
/// it directly. Routes:
///
///   GET    /collections                          → list collections
///   POST   /collections                          → create (schema in body)
///   DELETE /collections/{name}                   → drop
///   GET    /collections/{name}                   → stats
///   POST   /collections/{name}/entities          → insert one entity
///   DELETE /collections/{name}/entities/{id}     → delete by id
///   GET    /collections/{name}/entities/{id}     → point lookup
///   POST   /collections/{name}/flush             → flush
///   POST   /collections/{name}/search            → vector / filtered /
///                                                  multi-vector search
class RestHandler {
 public:
  explicit RestHandler(db::VectorDb* db) : db_(db) {}

  RestResponse Handle(const std::string& method, const std::string& path,
                      const std::string& body);

 private:
  RestResponse ListCollections();
  RestResponse CreateCollection(const Json& body);
  RestResponse DropCollection(const std::string& name);
  RestResponse CollectionStats(const std::string& name);
  RestResponse InsertEntity(const std::string& name, const Json& body);
  RestResponse DeleteEntity(const std::string& name, const std::string& id);
  RestResponse GetEntity(const std::string& name, const std::string& id);
  RestResponse Flush(const std::string& name);
  RestResponse Search(const std::string& name, const Json& body);

  db::VectorDb* db_;
};

}  // namespace api
}  // namespace vectordb

#endif  // VECTORDB_API_REST_HANDLER_H_
