#include "api/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vectordb {
namespace api {

const Json& Json::operator[](const std::string& key) const {
  static const Json kNull;
  auto it = object_.find(key);
  return it == object_.end() ? kNull : it->second;
}

namespace {

void DumpString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpNumber(double n, std::string* out) {
  if (n == std::floor(n) && std::abs(n) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
    *out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", n);
    *out += buf;
  }
}

void DumpValue(const Json& j, std::string* out);

void DumpArray(const Json& j, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < j.size(); ++i) {
    if (i != 0) out->push_back(',');
    DumpValue(j.at(i), out);
  }
  out->push_back(']');
}

void DumpObject(const Json& j, std::string* out) {
  out->push_back('{');
  bool first = true;
  for (const auto& [key, value] : j.object_items()) {
    if (!first) out->push_back(',');
    first = false;
    DumpString(key, out);
    out->push_back(':');
    DumpValue(value, out);
  }
  out->push_back('}');
}

void DumpValue(const Json& j, std::string* out) {
  switch (j.type()) {
    case Json::Type::kNull:
      *out += "null";
      break;
    case Json::Type::kBool:
      *out += j.as_bool() ? "true" : "false";
      break;
    case Json::Type::kNumber:
      DumpNumber(j.as_number(), out);
      break;
    case Json::Type::kString:
      DumpString(j.as_string(), out);
      break;
    case Json::Type::kArray:
      DumpArray(j, out);
      break;
    case Json::Type::kObject:
      DumpObject(j, out);
      break;
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Run() {
    SkipSpace();
    Json value;
    if (!ParseValue(&value)) return Status::InvalidArgument(error_);
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return value;
  }

 private:
  bool Fail(const std::string& message) {
    error_ = message + " at offset " + std::to_string(pos_);
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  bool ParseValue(Json* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) return false;
      *out = Json(std::move(s));
      return true;
    }
    if (ConsumeWord("null")) {
      *out = Json();
      return true;
    }
    if (ConsumeWord("true")) {
      *out = Json(true);
      return true;
    }
    if (ConsumeWord("false")) {
      *out = Json(false);
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseNumber(Json* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("invalid value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("invalid number");
    *out = Json(value);
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad unicode escape");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            const long code = std::strtol(hex.c_str(), nullptr, 16);
            // Basic-multilingual-plane only; encode as UTF-8.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(Json* out) {
    Consume('[');
    *out = Json::Array();
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      Json value;
      if (!ParseValue(&value)) return false;
      out->Append(std::move(value));
      SkipSpace();
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(Json* out) {
    Consume('{');
    *out = Json::Object();
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':'");
      Json value;
      if (!ParseValue(&value)) return false;
      out->Set(key, std::move(value));
      SkipSpace();
      if (Consume('}')) return true;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::string Json::Dump() const {
  std::string out;
  DumpValue(*this, &out);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace api
}  // namespace vectordb
