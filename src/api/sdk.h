#ifndef VECTORDB_API_SDK_H_
#define VECTORDB_API_SDK_H_

#include <memory>
#include <string>
#include <vector>

#include "db/vector_db.h"

namespace vectordb {
namespace api {

/// Search result as surfaced to applications: ids plus scores, and the
/// entity attributes when requested.
struct SearchResultRow {
  RowId id = kInvalidRowId;
  float score = 0.0f;
  std::vector<double> attributes;
};

/// Fluent client facade in the style of the paper's SDKs (Sec 2.1:
/// "easy-to-use SDK interfaces ... in Python, Java, Go, and C++"). This is
/// the C++ SDK: a thin, typed veneer over VectorDb that hides Status
/// plumbing behind a per-call error string and bundles common patterns
/// (insert+flush, search+fetch-attributes).
///
///   api::Client client(db);
///   client.Collection("products")
///         .WithVectorField("embedding", 128)
///         .WithAttribute("price")
///         .Create();
///   client.Insert("products", id, {vec}, {9.99});
///   auto rows = client.Search("products").Field("embedding")
///                     .TopK(5).NProbe(16).Run(query);
class Client {
 public:
  explicit Client(db::VectorDb* db) : db_(db) {}

  /// Error message of the last failed call ("" when the last call
  /// succeeded).
  const std::string& last_error() const { return last_error_; }

  /// Execution counters of the last SearchBuilder::Run/RunMulti call:
  /// segments scanned vs skipped, index vs flat, cache reuse, timings.
  const exec::QueryStats& last_query_stats() const {
    return last_query_stats_;
  }

  // ----- collection DDL -----

  class CollectionBuilder {
   public:
    CollectionBuilder(Client* client, std::string name)
        : client_(client) {
      schema_.name = std::move(name);
    }
    CollectionBuilder& WithVectorField(const std::string& name, size_t dim) {
      schema_.vector_fields.push_back({name, dim});
      return *this;
    }
    CollectionBuilder& WithAttribute(const std::string& name) {
      schema_.attributes.push_back(name);
      return *this;
    }
    CollectionBuilder& WithMetric(MetricType metric) {
      schema_.metric = metric;
      return *this;
    }
    CollectionBuilder& WithIndex(index::IndexType type,
                                 const index::IndexBuildParams& params = {}) {
      schema_.default_index = type;
      schema_.index_params = params;
      return *this;
    }
    /// Execute the DDL; false on failure (see Client::last_error()).
    bool Create();

   private:
    Client* client_;
    db::CollectionSchema schema_;
  };

  CollectionBuilder Collection(const std::string& name) {
    return CollectionBuilder(this, name);
  }
  bool DropCollection(const std::string& name);
  bool HasCollection(const std::string& name);
  std::vector<std::string> ListCollections();

  // ----- data plane -----

  /// Insert one entity; id = kInvalidRowId auto-assigns. Returns the row
  /// id, or kInvalidRowId on failure.
  RowId Insert(const std::string& collection, RowId id,
               const std::vector<std::vector<float>>& vectors,
               const std::vector<double>& attributes = {});
  bool Delete(const std::string& collection, RowId id);
  /// Sec 5.1 flush(): blocks until all pending writes are searchable.
  bool Flush(const std::string& collection);

  // ----- query plane -----

  class SearchBuilder {
   public:
    SearchBuilder(Client* client, std::string collection)
        : client_(client), collection_(std::move(collection)) {}
    SearchBuilder& Field(const std::string& field) {
      field_ = field;
      return *this;
    }
    SearchBuilder& TopK(size_t k) {
      options_.k = k;
      return *this;
    }
    SearchBuilder& NProbe(size_t nprobe) {
      options_.nprobe = nprobe;
      return *this;
    }
    SearchBuilder& EfSearch(size_t ef) {
      options_.ef_search = ef;
      return *this;
    }
    /// Strategy C over-fetch factor for filtered search (must be > 1).
    SearchBuilder& Theta(double theta) {
      options_.theta = theta;
      return *this;
    }
    /// Per-query deadline; 0 = none. An expired query fails with an
    /// Aborted error rather than returning a partial top-k.
    SearchBuilder& TimeoutSeconds(double seconds) {
      options_.timeout_seconds = seconds;
      return *this;
    }
    /// Attribute filter: attribute in [lo, hi].
    SearchBuilder& Where(const std::string& attribute, double lo, double hi) {
      where_attribute_ = attribute;
      range_ = {lo, hi};
      return *this;
    }
    /// Return the entities' attributes alongside ids/scores.
    SearchBuilder& FetchAttributes(bool fetch = true) {
      fetch_attributes_ = fetch;
      return *this;
    }

    /// Single-vector query (vector query or attribute filtering).
    std::vector<SearchResultRow> Run(const std::vector<float>& query);

    /// Multi-vector query over all fields with the given weights.
    std::vector<SearchResultRow> RunMulti(
        const std::vector<std::vector<float>>& query_fields,
        const std::vector<float>& weights = {});

   private:
    Client* client_;
    std::string collection_;
    std::string field_;
    db::QueryOptions options_;
    std::string where_attribute_;
    query::AttrRange range_{0, 0};
    bool fetch_attributes_ = false;
  };

  SearchBuilder Search(const std::string& collection) {
    return SearchBuilder(this, collection);
  }

  db::VectorDb* raw() { return db_; }

 private:
  friend class CollectionBuilder;
  friend class SearchBuilder;

  bool Record(const Status& status) {
    last_error_ = status.ok() ? "" : status.ToString();
    return status.ok();
  }

  db::VectorDb* db_;
  std::string last_error_;
  exec::QueryStats last_query_stats_;
};

}  // namespace api
}  // namespace vectordb

#endif  // VECTORDB_API_SDK_H_
