#ifndef VECTORDB_API_SDK_H_
#define VECTORDB_API_SDK_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "db/vector_db.h"
#include "serve/serving_tier.h"

namespace vectordb {
namespace api {

/// Search result as surfaced to applications: ids plus scores, and the
/// entity attributes when requested.
struct SearchResultRow {
  RowId id = kInvalidRowId;
  float score = 0.0f;
  std::vector<double> attributes;
};

/// Everything one search produced, returned by value so concurrent callers
/// sharing a Client never race on shared mutable state: the rows, the
/// execution counters for exactly this query, and the status.
struct SearchOutcome {
  std::vector<SearchResultRow> rows;
  exec::QueryStats stats;
  Status status = Status::OK();
  /// Backpressure hint, set when status is ResourceExhausted and the query
  /// went through a serving tier: seconds until capacity should return.
  double retry_after_seconds = 0.0;
  /// Admission-to-execution wait in the serving tier (0 when direct).
  double queue_seconds = 0.0;
  /// Queries coalesced into the shared scan (0 when direct, >= 1 served).
  size_t batch_width = 0;

  bool ok() const { return status.ok(); }
};

/// Result of Client::Insert. Separates "insert failed" from "inserted with
/// some id": the legacy RowId return could not distinguish a failure from
/// a caller-supplied kInvalidRowId.
struct InsertOutcome {
  RowId id = kInvalidRowId;
  Status status = Status::OK();

  bool ok() const { return status.ok(); }
};

/// Fluent client facade in the style of the paper's SDKs (Sec 2.1:
/// "easy-to-use SDK interfaces ... in Python, Java, Go, and C++"). This is
/// the C++ SDK: a thin, typed veneer over VectorDb that bundles common
/// patterns (insert+flush, search+fetch-attributes) and returns per-call
/// outcomes, so a single Client may be shared across threads.
///
/// Every call reports through a by-value Status or outcome type — there is
/// no per-client "last error" state (the old last_error()/last_query_stats()
/// shims are gone; under sharing they could describe another thread's call).
///
///   api::Client client(db);
///   client.Collection("products")
///         .WithVectorField("embedding", 128)
///         .WithAttribute("price")
///         .Create();                       // -> Status
///   client.Insert("products", id, {vec}, {9.99});
///   auto outcome = client.Search("products").Field("embedding")
///                        .TopK(5).NProbe(16).Run(query);
///   if (outcome.ok()) { ... outcome.rows ... outcome.stats ... }
///
/// A Client constructed with a serve::ServingTier routes single-vector
/// searches through its admission gate: quota rejections come back as
/// ResourceExhausted outcomes carrying retry_after_seconds, and compatible
/// concurrent queries share batched segment scans.
class Client {
 public:
  explicit Client(db::VectorDb* db, serve::ServingTier* serving = nullptr)
      : db_(db), serving_(serving) {}

  // ----- collection DDL -----

  class CollectionBuilder {
   public:
    CollectionBuilder(Client* client, std::string name)
        : client_(client) {
      schema_.name = std::move(name);
    }
    CollectionBuilder& WithVectorField(const std::string& name, size_t dim) {
      schema_.vector_fields.push_back({name, dim});
      return *this;
    }
    CollectionBuilder& WithAttribute(const std::string& name) {
      schema_.attributes.push_back(name);
      return *this;
    }
    CollectionBuilder& WithMetric(MetricType metric) {
      schema_.metric = metric;
      return *this;
    }
    CollectionBuilder& WithIndex(index::IndexType type,
                                 const index::IndexBuildParams& params = {}) {
      schema_.default_index = type;
      schema_.index_params = params;
      return *this;
    }
    /// Execute the DDL.
    Status Create();

   private:
    Client* client_;
    db::CollectionSchema schema_;
  };

  CollectionBuilder Collection(const std::string& name) {
    return CollectionBuilder(this, name);
  }
  Status DropCollection(const std::string& name);
  /// Whether the collection is currently open in this process. Result so
  /// future transports (REST client, catalog lookups) can surface errors;
  /// callers wanting a plain flag use HasCollection(name).value_or(false).
  Result<bool> HasCollection(const std::string& name);
  std::vector<std::string> ListCollections();

  // ----- data plane -----

  /// Insert one entity; id = kInvalidRowId auto-assigns. The outcome
  /// carries the assigned row id and the status, so failure is never
  /// conflated with an id value.
  InsertOutcome Insert(const std::string& collection, RowId id,
                       const std::vector<std::vector<float>>& vectors,
                       const std::vector<double>& attributes = {});
  Status Delete(const std::string& collection, RowId id);
  /// Sec 5.1 flush(): blocks until all pending writes are searchable.
  Status Flush(const std::string& collection);

  // ----- query plane -----

  class SearchBuilder {
   public:
    SearchBuilder(Client* client, std::string collection)
        : client_(client), collection_(std::move(collection)) {}
    SearchBuilder& Field(const std::string& field) {
      field_ = field;
      return *this;
    }
    /// Tenant identity for admission control; only meaningful when the
    /// Client is attached to a serving tier ("" = default tenant).
    SearchBuilder& Tenant(const std::string& tenant) {
      tenant_ = tenant;
      return *this;
    }
    SearchBuilder& TopK(size_t k) {
      options_.k = k;
      return *this;
    }
    SearchBuilder& NProbe(size_t nprobe) {
      options_.nprobe = nprobe;
      return *this;
    }
    SearchBuilder& EfSearch(size_t ef) {
      options_.ef_search = ef;
      return *this;
    }
    /// Strategy C over-fetch factor for filtered search (must be > 1).
    SearchBuilder& Theta(double theta) {
      options_.theta = theta;
      return *this;
    }
    /// Per-query deadline; 0 = none. An expired query fails with an
    /// Aborted error rather than returning a partial top-k.
    SearchBuilder& TimeoutSeconds(double seconds) {
      options_.timeout_seconds = seconds;
      return *this;
    }
    /// Attribute filter: attribute in [lo, hi].
    SearchBuilder& Where(const std::string& attribute, double lo, double hi) {
      where_attribute_ = attribute;
      range_ = {lo, hi};
      return *this;
    }
    /// Return the entities' attributes alongside ids/scores.
    SearchBuilder& FetchAttributes(bool fetch = true) {
      fetch_attributes_ = fetch;
      return *this;
    }

    /// Single-vector query (vector query or attribute filtering). Routed
    /// through the serving tier's admission gate when one is attached.
    SearchOutcome Run(const std::vector<float>& query);

    /// Multi-vector query over all fields with the given weights. Always
    /// executes directly (multi-vector plans do not batch).
    SearchOutcome RunMulti(
        const std::vector<std::vector<float>>& query_fields,
        const std::vector<float>& weights = {});

   private:
    Client* client_;
    std::string collection_;
    std::string field_;
    std::string tenant_;
    db::QueryOptions options_;
    std::string where_attribute_;
    query::AttrRange range_{0, 0};
    bool fetch_attributes_ = false;
  };

  SearchBuilder Search(const std::string& collection) {
    return SearchBuilder(this, collection);
  }

  db::VectorDb* raw() { return db_; }
  serve::ServingTier* serving() { return serving_; }

 private:
  friend class CollectionBuilder;
  friend class SearchBuilder;

  db::VectorDb* db_;
  serve::ServingTier* serving_;  ///< Optional admission front door.
};

}  // namespace api
}  // namespace vectordb

#endif  // VECTORDB_API_SDK_H_
