#ifndef VECTORDB_API_SDK_H_
#define VECTORDB_API_SDK_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "db/vector_db.h"

namespace vectordb {
namespace api {

/// Search result as surfaced to applications: ids plus scores, and the
/// entity attributes when requested.
struct SearchResultRow {
  RowId id = kInvalidRowId;
  float score = 0.0f;
  std::vector<double> attributes;
};

/// Everything one search produced, returned by value so concurrent callers
/// sharing a Client never race on shared mutable state: the rows, the
/// execution counters for exactly this query, and the status.
struct SearchOutcome {
  std::vector<SearchResultRow> rows;
  exec::QueryStats stats;
  Status status = Status::OK();

  bool ok() const { return status.ok(); }
};

/// Result of Client::Insert. Separates "insert failed" from "inserted with
/// some id": the legacy RowId return could not distinguish a failure from
/// a caller-supplied kInvalidRowId.
struct InsertOutcome {
  RowId id = kInvalidRowId;
  Status status = Status::OK();

  bool ok() const { return status.ok(); }
};

/// Fluent client facade in the style of the paper's SDKs (Sec 2.1:
/// "easy-to-use SDK interfaces ... in Python, Java, Go, and C++"). This is
/// the C++ SDK: a thin, typed veneer over VectorDb that bundles common
/// patterns (insert+flush, search+fetch-attributes) and returns per-call
/// outcomes, so a single Client may be shared across threads.
///
///   api::Client client(db);
///   client.Collection("products")
///         .WithVectorField("embedding", 128)
///         .WithAttribute("price")
///         .Create();
///   client.Insert("products", id, {vec}, {9.99});
///   auto outcome = client.Search("products").Field("embedding")
///                        .TopK(5).NProbe(16).Run(query);
///   if (outcome.ok()) { ... outcome.rows ... outcome.stats ... }
class Client {
 public:
  explicit Client(db::VectorDb* db) : db_(db) {}

  /// DEPRECATED: error message of the last failed call on this Client (""
  /// when the last call succeeded). Prefer the Status carried inside the
  /// returned SearchOutcome/InsertOutcome: this accessor reports the most
  /// recent call on *any* thread, so under sharing it can describe someone
  /// else's query. Kept as a shim for pre-outcome callers; returns by value
  /// under a lock so the read itself is race-free.
  std::string last_error() const VDB_EXCLUDES(shim_mu_) {
    MutexLock lock(&shim_mu_);
    return last_error_;
  }

  /// DEPRECATED: execution counters of the last SearchBuilder::Run/RunMulti
  /// call on this Client. Prefer SearchOutcome::stats, which is pinned to
  /// one query. Same caveat and locking discipline as last_error().
  exec::QueryStats last_query_stats() const VDB_EXCLUDES(shim_mu_) {
    MutexLock lock(&shim_mu_);
    return last_query_stats_;
  }

  // ----- collection DDL -----

  class CollectionBuilder {
   public:
    CollectionBuilder(Client* client, std::string name)
        : client_(client) {
      schema_.name = std::move(name);
    }
    CollectionBuilder& WithVectorField(const std::string& name, size_t dim) {
      schema_.vector_fields.push_back({name, dim});
      return *this;
    }
    CollectionBuilder& WithAttribute(const std::string& name) {
      schema_.attributes.push_back(name);
      return *this;
    }
    CollectionBuilder& WithMetric(MetricType metric) {
      schema_.metric = metric;
      return *this;
    }
    CollectionBuilder& WithIndex(index::IndexType type,
                                 const index::IndexBuildParams& params = {}) {
      schema_.default_index = type;
      schema_.index_params = params;
      return *this;
    }
    /// Execute the DDL; false on failure (see Client::last_error()).
    bool Create();

   private:
    Client* client_;
    db::CollectionSchema schema_;
  };

  CollectionBuilder Collection(const std::string& name) {
    return CollectionBuilder(this, name);
  }
  bool DropCollection(const std::string& name);
  bool HasCollection(const std::string& name);
  std::vector<std::string> ListCollections();

  // ----- data plane -----

  /// Insert one entity; id = kInvalidRowId auto-assigns. The outcome
  /// carries the assigned row id and the status, so failure is never
  /// conflated with an id value.
  InsertOutcome Insert(const std::string& collection, RowId id,
                       const std::vector<std::vector<float>>& vectors,
                       const std::vector<double>& attributes = {});
  bool Delete(const std::string& collection, RowId id);
  /// Sec 5.1 flush(): blocks until all pending writes are searchable.
  bool Flush(const std::string& collection);

  // ----- query plane -----

  class SearchBuilder {
   public:
    SearchBuilder(Client* client, std::string collection)
        : client_(client), collection_(std::move(collection)) {}
    SearchBuilder& Field(const std::string& field) {
      field_ = field;
      return *this;
    }
    SearchBuilder& TopK(size_t k) {
      options_.k = k;
      return *this;
    }
    SearchBuilder& NProbe(size_t nprobe) {
      options_.nprobe = nprobe;
      return *this;
    }
    SearchBuilder& EfSearch(size_t ef) {
      options_.ef_search = ef;
      return *this;
    }
    /// Strategy C over-fetch factor for filtered search (must be > 1).
    SearchBuilder& Theta(double theta) {
      options_.theta = theta;
      return *this;
    }
    /// Per-query deadline; 0 = none. An expired query fails with an
    /// Aborted error rather than returning a partial top-k.
    SearchBuilder& TimeoutSeconds(double seconds) {
      options_.timeout_seconds = seconds;
      return *this;
    }
    /// Attribute filter: attribute in [lo, hi].
    SearchBuilder& Where(const std::string& attribute, double lo, double hi) {
      where_attribute_ = attribute;
      range_ = {lo, hi};
      return *this;
    }
    /// Return the entities' attributes alongside ids/scores.
    SearchBuilder& FetchAttributes(bool fetch = true) {
      fetch_attributes_ = fetch;
      return *this;
    }

    /// Single-vector query (vector query or attribute filtering).
    SearchOutcome Run(const std::vector<float>& query);

    /// Multi-vector query over all fields with the given weights.
    SearchOutcome RunMulti(
        const std::vector<std::vector<float>>& query_fields,
        const std::vector<float>& weights = {});

   private:
    Client* client_;
    std::string collection_;
    std::string field_;
    db::QueryOptions options_;
    std::string where_attribute_;
    query::AttrRange range_{0, 0};
    bool fetch_attributes_ = false;
  };

  SearchBuilder Search(const std::string& collection) {
    return SearchBuilder(this, collection);
  }

  db::VectorDb* raw() { return db_; }

 private:
  friend class CollectionBuilder;
  friend class SearchBuilder;

  /// Mirror a call's status into the deprecated last_error() shim.
  bool Record(const Status& status) VDB_EXCLUDES(shim_mu_) {
    MutexLock lock(&shim_mu_);
    last_error_ = status.ok() ? "" : status.ToString();
    return status.ok();
  }

  /// Mirror a finished search's outcome into both deprecated shims.
  void RecordSearch(const SearchOutcome& outcome) VDB_EXCLUDES(shim_mu_) {
    MutexLock lock(&shim_mu_);
    last_error_ = outcome.status.ok() ? "" : outcome.status.ToString();
    last_query_stats_ = outcome.stats;
  }

  db::VectorDb* db_;
  // Deprecated last-call shims: outcomes are authoritative; these exist so
  // pre-outcome callers keep working, and only ever hold what some recent
  // call produced.
  mutable Mutex shim_mu_{VDB_LOCK_RANK(kSdkShim)};
  std::string last_error_ VDB_GUARDED_BY(shim_mu_);
  exec::QueryStats last_query_stats_ VDB_GUARDED_BY(shim_mu_);
};

}  // namespace api
}  // namespace vectordb

#endif  // VECTORDB_API_SDK_H_
