#include "api/sdk.h"

namespace vectordb {
namespace api {

Status Client::CollectionBuilder::Create() {
  return client_->db_->CreateCollection(schema_).status();
}

Status Client::DropCollection(const std::string& name) {
  return db_->DropCollection(name);
}

Result<bool> Client::HasCollection(const std::string& name) {
  return db_->GetCollection(name) != nullptr;
}

std::vector<std::string> Client::ListCollections() {
  return db_->ListCollections();
}

InsertOutcome Client::Insert(const std::string& collection, RowId id,
                             const std::vector<std::vector<float>>& vectors,
                             const std::vector<double>& attributes) {
  InsertOutcome outcome;
  db::Collection* c = db_->GetCollection(collection);
  if (c == nullptr) {
    outcome.status = Status::NotFound("unknown collection: " + collection);
    return outcome;
  }
  db::Entity entity;
  entity.id = id == kInvalidRowId ? c->AllocateRowIds(1) : id;
  entity.vectors = vectors;
  entity.attributes = attributes;
  outcome.status = c->Insert(entity);
  if (outcome.ok()) outcome.id = entity.id;
  return outcome;
}

Status Client::Delete(const std::string& collection, RowId id) {
  db::Collection* c = db_->GetCollection(collection);
  if (c == nullptr) {
    return Status::NotFound("unknown collection: " + collection);
  }
  return c->Delete(id);
}

Status Client::Flush(const std::string& collection) {
  return db_->Flush(collection);
}

namespace {

std::vector<SearchResultRow> ToRows(const HitList& hits,
                                    const db::Collection* collection,
                                    bool fetch_attributes) {
  std::vector<SearchResultRow> rows;
  rows.reserve(hits.size());
  for (const SearchHit& hit : hits) {
    SearchResultRow row;
    row.id = hit.id;
    row.score = hit.score;
    if (fetch_attributes) {
      auto entity = collection->Get(hit.id);
      if (entity.ok()) row.attributes = entity.value().attributes;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

SearchOutcome Client::SearchBuilder::Run(const std::vector<float>& query) {
  SearchOutcome outcome;
  db::Collection* c = client_->db_->GetCollection(collection_);
  if (c == nullptr) {
    outcome.status = Status::NotFound("unknown collection: " + collection_);
    return outcome;
  }
  const std::string field =
      field_.empty() && !c->schema().vector_fields.empty()
          ? c->schema().vector_fields[0].name
          : field_;

  if (client_->serving_ != nullptr) {
    serve::SearchRequest request;
    request.tenant = tenant_;
    request.collection = collection_;
    request.field = field;
    request.query = query;
    request.options = options_;
    if (!where_attribute_.empty()) {
      request.has_filter = true;
      request.filter_attribute = where_attribute_;
      request.filter_range = range_;
    }
    serve::SearchReply reply = client_->serving_->Search(std::move(request));
    outcome.status = reply.status;
    outcome.stats = reply.stats;
    outcome.retry_after_seconds = reply.retry_after_seconds;
    outcome.queue_seconds = reply.queue_seconds;
    outcome.batch_width = reply.batch_width;
    if (outcome.ok()) {
      outcome.rows = ToRows(reply.hits, c, fetch_attributes_);
    }
    return outcome;
  }

  if (!where_attribute_.empty()) {
    auto result = c->SearchFiltered(field, query.data(), where_attribute_,
                                    range_, options_, &outcome.stats);
    outcome.status = result.status();
    if (outcome.ok()) {
      outcome.rows = ToRows(result.value(), c, fetch_attributes_);
    }
  } else {
    auto result = c->Search(field, query.data(), 1, options_, &outcome.stats);
    outcome.status = result.status();
    if (outcome.ok()) {
      outcome.rows = ToRows(result.value()[0], c, fetch_attributes_);
    }
  }
  return outcome;
}

SearchOutcome Client::SearchBuilder::RunMulti(
    const std::vector<std::vector<float>>& query_fields,
    const std::vector<float>& weights) {
  SearchOutcome outcome;
  db::Collection* c = client_->db_->GetCollection(collection_);
  if (c == nullptr) {
    outcome.status = Status::NotFound("unknown collection: " + collection_);
    return outcome;
  }
  std::vector<const float*> query;
  query.reserve(query_fields.size());
  for (const auto& q : query_fields) query.push_back(q.data());
  auto result =
      c->MultiVectorSearch(query, weights, options_, &outcome.stats);
  outcome.status = result.status();
  if (outcome.ok()) {
    outcome.rows = ToRows(result.value(), c, fetch_attributes_);
  }
  return outcome;
}

}  // namespace api
}  // namespace vectordb
