#include "api/sdk.h"

namespace vectordb {
namespace api {

bool Client::CollectionBuilder::Create() {
  return client_->Record(client_->db_->CreateCollection(schema_).status());
}

bool Client::DropCollection(const std::string& name) {
  return Record(db_->DropCollection(name));
}

bool Client::HasCollection(const std::string& name) {
  return db_->GetCollection(name) != nullptr;
}

std::vector<std::string> Client::ListCollections() {
  return db_->ListCollections();
}

RowId Client::Insert(const std::string& collection, RowId id,
                     const std::vector<std::vector<float>>& vectors,
                     const std::vector<double>& attributes) {
  db::Collection* c = db_->GetCollection(collection);
  if (c == nullptr) {
    Record(Status::NotFound("unknown collection: " + collection));
    return kInvalidRowId;
  }
  db::Entity entity;
  entity.id = id == kInvalidRowId ? c->AllocateRowIds(1) : id;
  entity.vectors = vectors;
  entity.attributes = attributes;
  if (!Record(c->Insert(entity))) return kInvalidRowId;
  return entity.id;
}

bool Client::Delete(const std::string& collection, RowId id) {
  db::Collection* c = db_->GetCollection(collection);
  if (c == nullptr) {
    return Record(Status::NotFound("unknown collection: " + collection));
  }
  return Record(c->Delete(id));
}

bool Client::Flush(const std::string& collection) {
  return Record(db_->Flush(collection));
}

namespace {

std::vector<SearchResultRow> ToRows(const HitList& hits,
                                    const db::Collection* collection,
                                    bool fetch_attributes) {
  std::vector<SearchResultRow> rows;
  rows.reserve(hits.size());
  for (const SearchHit& hit : hits) {
    SearchResultRow row;
    row.id = hit.id;
    row.score = hit.score;
    if (fetch_attributes) {
      auto entity = collection->Get(hit.id);
      if (entity.ok()) row.attributes = entity.value().attributes;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

std::vector<SearchResultRow> Client::SearchBuilder::Run(
    const std::vector<float>& query) {
  db::Collection* c = client_->db_->GetCollection(collection_);
  if (c == nullptr) {
    client_->Record(Status::NotFound("unknown collection: " + collection_));
    return {};
  }
  const std::string field =
      field_.empty() && !c->schema().vector_fields.empty()
          ? c->schema().vector_fields[0].name
          : field_;

  client_->last_query_stats_ = exec::QueryStats{};
  if (!where_attribute_.empty()) {
    auto result = c->SearchFiltered(field, query.data(), where_attribute_,
                                    range_, options_,
                                    &client_->last_query_stats_);
    if (!client_->Record(result.status())) return {};
    return ToRows(result.value(), c, fetch_attributes_);
  }
  auto result =
      c->Search(field, query.data(), 1, options_, &client_->last_query_stats_);
  if (!client_->Record(result.status())) return {};
  return ToRows(result.value()[0], c, fetch_attributes_);
}

std::vector<SearchResultRow> Client::SearchBuilder::RunMulti(
    const std::vector<std::vector<float>>& query_fields,
    const std::vector<float>& weights) {
  db::Collection* c = client_->db_->GetCollection(collection_);
  if (c == nullptr) {
    client_->Record(Status::NotFound("unknown collection: " + collection_));
    return {};
  }
  std::vector<const float*> query;
  query.reserve(query_fields.size());
  for (const auto& q : query_fields) query.push_back(q.data());
  client_->last_query_stats_ = exec::QueryStats{};
  auto result = c->MultiVectorSearch(query, weights, options_,
                                     &client_->last_query_stats_);
  if (!client_->Record(result.status())) return {};
  return ToRows(result.value(), c, fetch_attributes_);
}

}  // namespace api
}  // namespace vectordb
