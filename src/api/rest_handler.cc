#include "api/rest_handler.h"

#include <cmath>
#include <cstdlib>
#include <utility>
#include <vector>

#include "dist/cluster.h"
#include "obs/catalog.h"
#include "obs/metrics.h"

namespace vectordb {
namespace api {

int HttpStatusFor(const Status& status) {
  if (status.ok()) return 200;
  if (status.IsNotFound()) return 404;
  if (status.IsAlreadyExists()) return 409;
  if (status.IsInvalidArgument() || status.IsNotSupported()) return 400;
  if (status.IsResourceExhausted()) return 429;  // Admission / quota reject.
  if (status.IsUnavailable()) return 503;
  if (status.IsAborted()) return 504;  // Query deadline expired.
  return 500;
}

const char* StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kUnavailable:
      return "Unavailable";
  }
  return "Internal";
}

Json ErrorBody(const Status& status) {
  Json error = Json::Object();
  error.Set("code", StatusCodeName(status.code()));
  error.Set("message", status.message());
  error.Set("retryable", Json(status.IsTransient()));
  Json body = Json::Object();
  body.Set("error", std::move(error));
  return body;
}

namespace {

/// Route-level failure with an explicit HTTP status (405s and route misses
/// have no unique Status code); the body still follows the one schema.
RestResponse Error(int http_status, const Status& status) {
  RestResponse response;
  response.status = http_status;
  response.body = ErrorBody(status);
  return response;
}

RestResponse FromStatus(const Status& status) {
  if (status.ok()) return RestResponse{};
  return Error(HttpStatusFor(status), status);
}

RestResponse MethodNotAllowed() {
  return Error(405, Status::NotSupported("method not allowed"));
}

/// HTTP Retry-After is integral delta-seconds; round up so clients never
/// retry before the hinted instant.
std::string RetryAfterValue(double seconds) {
  const long long v = static_cast<long long>(std::ceil(seconds));
  return std::to_string(v < 1 ? 1 : v);
}

/// Split "/collections/foo/entities/7" into path segments.
std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> segments;
  size_t begin = 0;
  while (begin < path.size()) {
    while (begin < path.size() && path[begin] == '/') ++begin;
    size_t end = path.find('/', begin);
    if (end == std::string::npos) end = path.size();
    if (end > begin) segments.push_back(path.substr(begin, end - begin));
    begin = end;
  }
  return segments;
}

bool ParseVector(const Json& array, std::vector<float>* out) {
  if (!array.is_array()) return false;
  out->clear();
  out->reserve(array.size());
  for (size_t i = 0; i < array.size(); ++i) {
    if (!array.at(i).is_number()) return false;
    out->push_back(static_cast<float>(array.at(i).as_number()));
  }
  return true;
}

MetricType ParseMetric(const std::string& name) {
  if (name == "IP") return MetricType::kInnerProduct;
  if (name == "COSINE") return MetricType::kCosine;
  return MetricType::kL2;
}

index::IndexType ParseIndexType(const std::string& name) {
  if (name == "FLAT") return index::IndexType::kFlat;
  if (name == "IVF_SQ8") return index::IndexType::kIvfSq8;
  if (name == "IVF_PQ") return index::IndexType::kIvfPq;
  if (name == "HNSW") return index::IndexType::kHnsw;
  if (name == "NSG") return index::IndexType::kNsg;
  if (name == "ANNOY") return index::IndexType::kAnnoy;
  return index::IndexType::kIvfFlat;
}

Json HitsToJson(const HitList& hits) {
  Json rows = Json::Array();
  for (const SearchHit& hit : hits) {
    Json row = Json::Object();
    row.Set("id", Json(static_cast<int64_t>(hit.id)));
    row.Set("score", Json(static_cast<double>(hit.score)));
    rows.Append(std::move(row));
  }
  return rows;
}

Json StatsToJson(const exec::QueryStats& stats) {
  Json out = Json::Object();
  out.Set("segments_scanned", Json(static_cast<int64_t>(stats.segments_scanned)));
  out.Set("segments_skipped", Json(static_cast<int64_t>(stats.segments_skipped)));
  out.Set("segments_indexed", Json(static_cast<int64_t>(stats.segments_indexed)));
  out.Set("segments_flat", Json(static_cast<int64_t>(stats.segments_flat)));
  out.Set("index_fallbacks", Json(static_cast<int64_t>(stats.index_fallbacks)));
  out.Set("rows_filtered", Json(static_cast<int64_t>(stats.rows_filtered)));
  out.Set("view_cache_hits", Json(static_cast<int64_t>(stats.view_cache_hits)));
  out.Set("view_cache_misses",
          Json(static_cast<int64_t>(stats.view_cache_misses)));
  out.Set("total_seconds", Json(stats.total_seconds));
  return out;
}

Json SamplesToJson(const std::vector<obs::Sample>& samples) {
  Json out = Json::Array();
  for (const obs::Sample& sample : samples) {
    Json s = Json::Object();
    s.Set("name", sample.name);
    switch (sample.kind) {
      case obs::MetricKind::kCounter:
        s.Set("kind", "counter");
        s.Set("value", Json(sample.value));
        break;
      case obs::MetricKind::kGauge:
        s.Set("kind", "gauge");
        s.Set("value", Json(sample.value));
        break;
      case obs::MetricKind::kHistogram:
        s.Set("kind", "histogram");
        s.Set("count", Json(sample.value));
        s.Set("sum", Json(sample.sum));
        break;
    }
    out.Append(std::move(s));
  }
  return out;
}

}  // namespace

RestResponse RestHandler::Handle(const std::string& method,
                                 const std::string& path,
                                 const std::string& body) {
  auto segments = SplitPath(path);
  // Versioned route table: /v1/... is canonical; the unversioned legacy
  // paths stay valid through this one rewrite.
  if (!segments.empty() && segments[0] == "v1") {
    segments.erase(segments.begin());
  }
  Json parsed = Json::Object();
  if (!body.empty()) {
    auto result = Json::Parse(body);
    if (!result.ok()) return FromStatus(Status::InvalidArgument("invalid JSON: " + body));
    parsed = std::move(result).value();
  }

  if (segments.size() == 1 && segments[0] == "metrics") {
    if (method == "GET") return Metrics();
    return MethodNotAllowed();
  }
  if (segments.size() == 2 && segments[0] == "cluster" &&
      segments[1] == "health") {
    if (method == "GET") return ClusterHealth();
    return MethodNotAllowed();
  }
  if (segments.empty() || segments[0] != "collections") {
    return Error(404, Status::NotFound("unknown route: " + path));
  }
  if (segments.size() == 1) {
    if (method == "GET") return ListCollections();
    if (method == "POST") return CreateCollection(parsed);
    return MethodNotAllowed();
  }
  const std::string& name = segments[1];
  if (segments.size() == 2) {
    if (method == "DELETE") return DropCollection(name);
    if (method == "GET") return CollectionStats(name);
    return MethodNotAllowed();
  }
  const std::string& verb = segments[2];
  if (verb == "entities") {
    if (segments.size() == 3 && method == "POST") {
      return InsertEntity(name, parsed);
    }
    if (segments.size() == 4 && method == "DELETE") {
      return DeleteEntity(name, segments[3]);
    }
    if (segments.size() == 4 && method == "GET") {
      return GetEntity(name, segments[3]);
    }
  }
  if (verb == "flush" && method == "POST") return Flush(name);
  if (verb == "search" && method == "POST") return Search(name, parsed);
  return Error(404, Status::NotFound("unknown route: " + path));
}

RestResponse RestHandler::Metrics() {
  // Force-register every catalog family so a scrape against an idle process
  // still exposes the full set (gauges at 0 rather than absent).
  obs::TouchAll();
  RestResponse response;
  response.text = obs::MetricsRegistry::Global().RenderPrometheus();
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  return response;
}

RestResponse RestHandler::ClusterHealth() {
  RestResponse response;
  if (cluster_ == nullptr) {
    // Embedded/standalone deployment: always healthy from the shard-map
    // perspective, and probes don't need a different URL per deployment.
    response.body.Set("mode", "standalone");
    response.body.Set("healthy", Json(true));
    return response;
  }
  const bool writer_alive = cluster_->writer_alive();
  const std::vector<std::string> readers = cluster_->live_readers();
  // Serving requires a writer for the data plane and a non-empty shard ring
  // for the query plane; report 503 (probe-visible) when either is missing.
  const bool healthy = writer_alive && !readers.empty();

  response.status = healthy ? 200 : 503;
  response.body.Set("mode", "cluster");
  response.body.Set("healthy", Json(healthy));
  response.body.Set("writer_alive", Json(writer_alive));
  response.body.Set("replication_factor",
                    Json(static_cast<int64_t>(cluster_->replication_factor())));
  Json reader_names = Json::Array();
  for (const std::string& name : readers) reader_names.Append(Json(name));
  response.body.Set("live_readers", std::move(reader_names));
  response.body.Set("num_live_readers",
                    Json(static_cast<int64_t>(readers.size())));

  // Readers pinned to a stale snapshot, per collection (0 = fully caught up).
  Json stale = Json::Object();
  for (const std::string& name : cluster_->coordinator().Collections()) {
    stale.Set(name, Json(static_cast<int64_t>(cluster_->stale_readers(name))));
  }
  response.body.Set("stale_readers", std::move(stale));

  // The vdb_dist availability counters, as this cluster instance counts
  // them (process-wide series live under /v1/metrics).
  Json counters = Json::Object();
  counters.Set("rpcs", Json(static_cast<int64_t>(cluster_->rpc_count())));
  counters.Set("degraded_queries",
               Json(static_cast<int64_t>(cluster_->degraded_queries())));
  counters.Set("failover_rpcs",
               Json(static_cast<int64_t>(cluster_->failover_rpcs())));
  counters.Set("publish_failures",
               Json(static_cast<int64_t>(cluster_->publish_failures())));
  counters.Set("refresh_retries",
               Json(static_cast<int64_t>(cluster_->refresh_retries())));
  response.body.Set("counters", std::move(counters));
  return response;
}

RestResponse RestHandler::ListCollections() {
  RestResponse response;
  Json names = Json::Array();
  for (const std::string& name : db_->ListCollections()) {
    names.Append(Json(name));
  }
  response.body.Set("collections", std::move(names));
  return response;
}

RestResponse RestHandler::CreateCollection(const Json& body) {
  if (!body["name"].is_string() || !body["fields"].is_array()) {
    return FromStatus(Status::InvalidArgument("body requires 'name' and 'fields'"));
  }
  db::CollectionSchema schema;
  schema.name = body["name"].as_string();
  for (size_t i = 0; i < body["fields"].size(); ++i) {
    const Json& field = body["fields"].at(i);
    if (!field["name"].is_string() || !field["dim"].is_number()) {
      return FromStatus(Status::InvalidArgument("each field requires 'name' and 'dim'"));
    }
    schema.vector_fields.push_back(
        {field["name"].as_string(),
         static_cast<size_t>(field["dim"].as_number())});
  }
  const Json& attrs = body["attributes"];
  for (size_t i = 0; attrs.is_array() && i < attrs.size(); ++i) {
    if (attrs.at(i).is_string()) {
      schema.attributes.push_back(attrs.at(i).as_string());
    }
  }
  if (body["metric"].is_string()) {
    schema.metric = ParseMetric(body["metric"].as_string());
  }
  if (body["index"].is_string()) {
    schema.default_index = ParseIndexType(body["index"].as_string());
  }
  if (body["nlist"].is_number()) {
    schema.index_params.nlist =
        static_cast<size_t>(body["nlist"].as_number());
  }
  auto created = db_->CreateCollection(schema);
  if (!created.ok()) return FromStatus(created.status());
  RestResponse response;
  response.status = 201;
  response.body.Set("name", schema.name);
  return response;
}

RestResponse RestHandler::DropCollection(const std::string& name) {
  return FromStatus(db_->DropCollection(name));
}

RestResponse RestHandler::CollectionStats(const std::string& name) {
  db::Collection* c = db_->GetCollection(name);
  if (c == nullptr) return FromStatus(Status::NotFound("unknown collection: " + name));
  RestResponse response;
  response.body.Set("name", name);
  response.body.Set("num_rows", Json(c->NumLiveRows()));
  response.body.Set("num_segments", Json(c->NumSegments()));
  response.body.Set("pending_rows", Json(c->pending_rows()));
  Json fields = Json::Array();
  for (const auto& field : c->schema().vector_fields) {
    Json f = Json::Object();
    f.Set("name", field.name);
    f.Set("dim", Json(field.dim));
    fields.Append(std::move(f));
  }
  response.body.Set("fields", std::move(fields));
  // This collection's slice of the process-wide registry (the series
  // labeled {collection="<name>"}).
  response.body.Set("metrics",
                    SamplesToJson(obs::MetricsRegistry::Global().Collect(
                        "collection", name)));
  return response;
}

RestResponse RestHandler::InsertEntity(const std::string& name,
                                       const Json& body) {
  db::Collection* c = db_->GetCollection(name);
  if (c == nullptr) return FromStatus(Status::NotFound("unknown collection: " + name));
  if (!body["vectors"].is_array()) {
    return FromStatus(Status::InvalidArgument("body requires 'vectors': [[...], ...]"));
  }
  db::Entity entity;
  entity.id = body["id"].is_number()
                  ? static_cast<RowId>(body["id"].as_number())
                  : c->AllocateRowIds(1);
  for (size_t f = 0; f < body["vectors"].size(); ++f) {
    std::vector<float> vec;
    if (!ParseVector(body["vectors"].at(f), &vec)) {
      return FromStatus(Status::InvalidArgument("vectors must be arrays of numbers"));
    }
    entity.vectors.push_back(std::move(vec));
  }
  const Json& attrs = body["attributes"];
  for (size_t i = 0; attrs.is_array() && i < attrs.size(); ++i) {
    entity.attributes.push_back(attrs.at(i).as_number());
  }
  const Status status = c->Insert(entity);
  if (!status.ok()) return FromStatus(status);
  RestResponse response;
  response.status = 201;
  response.body.Set("id", Json(static_cast<int64_t>(entity.id)));
  return response;
}

RestResponse RestHandler::DeleteEntity(const std::string& name,
                                       const std::string& id) {
  db::Collection* c = db_->GetCollection(name);
  if (c == nullptr) return FromStatus(Status::NotFound("unknown collection: " + name));
  return FromStatus(c->Delete(std::strtoll(id.c_str(), nullptr, 10)));
}

RestResponse RestHandler::GetEntity(const std::string& name,
                                    const std::string& id) {
  db::Collection* c = db_->GetCollection(name);
  if (c == nullptr) return FromStatus(Status::NotFound("unknown collection: " + name));
  auto entity = c->Get(std::strtoll(id.c_str(), nullptr, 10));
  if (!entity.ok()) return FromStatus(entity.status());
  RestResponse response;
  response.body.Set("id", Json(static_cast<int64_t>(entity.value().id)));
  Json vectors = Json::Array();
  for (const auto& vec : entity.value().vectors) {
    Json arr = Json::Array();
    for (float x : vec) arr.Append(Json(static_cast<double>(x)));
    vectors.Append(std::move(arr));
  }
  response.body.Set("vectors", std::move(vectors));
  Json attrs = Json::Array();
  for (double a : entity.value().attributes) attrs.Append(Json(a));
  response.body.Set("attributes", std::move(attrs));
  return response;
}

RestResponse RestHandler::Flush(const std::string& name) {
  return FromStatus(db_->Flush(name));
}

RestResponse RestHandler::Search(const std::string& name, const Json& body) {
  db::Collection* c = db_->GetCollection(name);
  if (c == nullptr) return FromStatus(Status::NotFound("unknown collection: " + name));

  db::QueryOptions options;
  if (body["k"].is_number()) {
    options.k = static_cast<size_t>(body["k"].as_number());
  }
  if (body["nprobe"].is_number()) {
    options.nprobe = static_cast<size_t>(body["nprobe"].as_number());
  }
  if (body["ef_search"].is_number()) {
    options.ef_search = static_cast<size_t>(body["ef_search"].as_number());
  }
  if (body["theta"].is_number()) {
    options.theta = body["theta"].as_number();
  }
  if (body["timeout_seconds"].is_number()) {
    options.timeout_seconds = body["timeout_seconds"].as_number();
  }

  // Multi-vector query: "vectors": [[...], [...]] (+ optional weights).
  if (body["vectors"].is_array()) {
    std::vector<std::vector<float>> fields(body["vectors"].size());
    std::vector<const float*> query;
    for (size_t f = 0; f < body["vectors"].size(); ++f) {
      if (!ParseVector(body["vectors"].at(f), &fields[f])) {
        return FromStatus(Status::InvalidArgument("vectors must be arrays of numbers"));
      }
      query.push_back(fields[f].data());
    }
    std::vector<float> weights;
    const Json& w = body["weights"];
    for (size_t i = 0; w.is_array() && i < w.size(); ++i) {
      weights.push_back(static_cast<float>(w.at(i).as_number()));
    }
    exec::QueryStats stats;
    auto result = c->MultiVectorSearch(query, weights, options, &stats);
    if (!result.ok()) return FromStatus(result.status());
    RestResponse response;
    response.body.Set("hits", HitsToJson(result.value()));
    response.body.Set("stats", StatsToJson(stats));
    return response;
  }

  // Single-vector query: "vector": [...].
  std::vector<float> query;
  if (!ParseVector(body["vector"], &query)) {
    return FromStatus(Status::InvalidArgument("body requires 'vector' or 'vectors'"));
  }
  const std::string field = body["field"].is_string()
                                ? body["field"].as_string()
                                : c->schema().vector_fields[0].name;

  // Optional attribute filter: {"filter": {"attribute": "...", "lo": a,
  // "hi": b}} (Sec 4.1).
  const Json& filter = body["filter"];
  bool has_filter = false;
  std::string filter_attribute;
  query::AttrRange filter_range{0, 0};
  if (filter.is_object()) {
    if (!filter["attribute"].is_string() || !filter["lo"].is_number() ||
        !filter["hi"].is_number()) {
      return FromStatus(Status::InvalidArgument("filter requires 'attribute', 'lo', 'hi'"));
    }
    has_filter = true;
    filter_attribute = filter["attribute"].as_string();
    filter_range = {filter["lo"].as_number(), filter["hi"].as_number()};
  }

  // With a serving tier attached, single-vector queries go through the
  // admission gate: per-tenant quotas, the global in-flight budget, and
  // batch coalescing. Rejections surface as 429 + Retry-After.
  if (serving_ != nullptr) {
    serve::SearchRequest request;
    if (body["tenant"].is_string()) request.tenant = body["tenant"].as_string();
    request.collection = name;
    request.field = field;
    request.query = std::move(query);
    request.options = options;
    request.has_filter = has_filter;
    request.filter_attribute = filter_attribute;
    request.filter_range = filter_range;
    serve::SearchReply reply = serving_->Search(std::move(request));
    if (!reply.status.ok()) {
      RestResponse response = FromStatus(reply.status);
      if (reply.status.IsResourceExhausted()) {
        const double hint = reply.retry_after_seconds;
        response.headers.emplace_back("Retry-After", RetryAfterValue(hint));
        Json error = response.body["error"];
        error.Set("retry_after_seconds", Json(hint));
        response.body.Set("error", std::move(error));
      }
      return response;
    }
    RestResponse response;
    response.body.Set("hits", HitsToJson(reply.hits));
    Json stats_json = StatsToJson(reply.stats);
    stats_json.Set("batch_width", Json(static_cast<int64_t>(reply.batch_width)));
    stats_json.Set("queue_seconds", Json(reply.queue_seconds));
    response.body.Set("stats", std::move(stats_json));
    return response;
  }

  if (has_filter) {
    exec::QueryStats stats;
    auto result = c->SearchFiltered(field, query.data(), filter_attribute,
                                    filter_range, options, &stats);
    if (!result.ok()) return FromStatus(result.status());
    RestResponse response;
    response.body.Set("hits", HitsToJson(result.value()));
    response.body.Set("stats", StatsToJson(stats));
    return response;
  }

  exec::QueryStats stats;
  auto result = c->Search(field, query.data(), 1, options, &stats);
  if (!result.ok()) return FromStatus(result.status());
  RestResponse response;
  response.body.Set("hits", HitsToJson(result.value()[0]));
  response.body.Set("stats", StatsToJson(stats));
  return response;
}

}  // namespace api
}  // namespace vectordb
