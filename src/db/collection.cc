#include "db/collection.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/result_heap.h"
#include "engine/batch_searcher.h"
#include "index/index_factory.h"
#include "index/ivf_index.h"
#include "query/cost_model.h"
#include "simd/distances.h"

namespace vectordb {
namespace db {

namespace {
constexpr uint32_t kManifestMagic = 0x464E4D56;  // "VMNF"
// Envelope magics for CRC-framed objects ([magic][crc32(body)][body]).
// Bodies written before this framing existed start directly with
// kManifestMagic (manifests) or arbitrary bytes (segments) and are still
// readable.
constexpr uint32_t kManifestEnvMagic = 0x32464D56;  // "VMF2"
constexpr uint32_t kSegmentEnvMagic = 0x32474553;   // "SEG2"

std::string EncodeDeletePayload(RowId row_id) {
  std::string payload;
  BinaryWriter writer(&payload);
  writer.PutI64(row_id);
  return payload;
}

/// Wrap `body` in a CRC envelope.
std::string EncodeEnvelope(uint32_t magic, const std::string& body) {
  std::string frame;
  BinaryWriter writer(&frame);
  writer.PutU32(magic);
  writer.PutU32(Crc32(body));
  frame += body;
  return frame;
}

/// Unwrap a CRC envelope; fails on magic mismatch or checksum mismatch.
Status DecodeEnvelope(uint32_t magic, const std::string& frame,
                      std::string* body) {
  BinaryReader reader(frame);
  uint32_t got_magic, crc;
  if (!reader.GetU32(&got_magic) || !reader.GetU32(&crc)) {
    return Status::Corruption("truncated envelope");
  }
  if (got_magic != magic) return Status::Corruption("bad envelope magic");
  body->assign(frame, 8, frame.size() - 8);
  if (Crc32(*body) != crc) return Status::Corruption("envelope CRC mismatch");
  return Status::OK();
}
}  // namespace

Collection::Collection(CollectionSchema schema,
                       const CollectionOptions& options)
    : schema_(std::move(schema)),
      options_(options),
      buffer_pool_(options.buffer_pool_bytes) {
  wal_ = std::make_unique<storage::WriteAheadLog>(options_.fs, WalPath());
  memtable_ =
      std::make_unique<storage::MemTable>(schema_.ToSegmentSchema());
  snapshot_manager_.SetDropHandler([this](SegmentId id) {
    buffer_pool_.Invalidate(id);
    (void)options_.fs->Delete(SegmentPath(id));
  });
}

std::string Collection::SegmentPath(SegmentId id) const {
  return options_.data_prefix + schema_.name + "/segments/" +
         std::to_string(id) + ".seg";
}

std::string Collection::ManifestPath() const {
  return options_.data_prefix + schema_.name + "/MANIFEST";
}

std::string Collection::ManifestPathFor(uint64_t seq) const {
  return ManifestPath() + "-" + std::to_string(seq);
}

std::string Collection::CurrentPath() const {
  return options_.data_prefix + schema_.name + "/CURRENT";
}

std::string Collection::WalPath() const {
  return options_.data_prefix + schema_.name + "/WAL";
}

Result<std::unique_ptr<Collection>> Collection::Create(
    const CollectionSchema& schema, const CollectionOptions& options) {
  VDB_RETURN_NOT_OK(schema.Validate());
  if (options.fs == nullptr) {
    return Status::InvalidArgument("a FileSystem is required");
  }
  std::unique_ptr<Collection> collection(new Collection(schema, options));
  for (const std::string& marker :
       {collection->CurrentPath(), collection->ManifestPath()}) {
    auto exists = options.fs->Exists(marker);
    if (!exists.ok()) return exists.status();
    if (exists.value()) {
      return Status::AlreadyExists("collection exists: " + schema.name);
    }
  }
  VDB_RETURN_NOT_OK(collection->PersistManifest());
  return collection;
}

Result<std::unique_ptr<Collection>> Collection::Open(
    const std::string& name, const CollectionOptions& options) {
  if (options.fs == nullptr) {
    return Status::InvalidArgument("a FileSystem is required");
  }
  // Load the manifest to learn the schema, then rebuild state.
  CollectionSchema bootstrap;
  bootstrap.name = name;
  bootstrap.vector_fields.push_back({"_", 1});  // Replaced by manifest.
  std::unique_ptr<Collection> collection(
      new Collection(bootstrap, options));
  VDB_RETURN_NOT_OK(collection->RecoverFromStorage());
  return collection;
}

Status Collection::PersistManifest() {
  std::string out;
  BinaryWriter writer(&out);
  writer.PutU32(kManifestMagic);
  std::string schema_blob;
  schema_.Serialize(&schema_blob);
  writer.PutString(schema_blob);
  writer.PutU64(next_segment_id_.load());
  writer.PutU64(next_row_id_.load());

  const storage::SnapshotPtr snapshot = snapshot_manager_.Acquire();
  writer.PutU64(snapshot->segments.size());
  for (const auto& segment : snapshot->segments) {
    writer.PutU64(segment->id());
  }
  std::vector<RowId> tombstone_rows;
  std::vector<SegmentId> tombstone_marks;
  for (const auto& [row_id, watermark] : *snapshot->tombstones) {
    tombstone_rows.push_back(row_id);
    tombstone_marks.push_back(watermark);
  }
  writer.PutVector(tombstone_rows);
  writer.PutVector(tombstone_marks);

  // Atomic commit protocol (LevelDB CURRENT-style, object-store friendly):
  // write MANIFEST-<seq> framed with a CRC, read it back to verify, then
  // flip the CURRENT pointer. A crash at any point leaves CURRENT naming
  // the previous fully-verified manifest, so recovery never parses a
  // half-written one.
  const std::string frame = EncodeEnvelope(kManifestEnvMagic, out);
  const uint64_t seq = next_manifest_seq_.fetch_add(1);
  const std::string path = ManifestPathFor(seq);
  VDB_RETURN_NOT_OK(options_.fs->Write(path, frame));
  std::string verify;
  VDB_RETURN_NOT_OK(options_.fs->Read(path, &verify));
  std::string verified_body;
  if (!DecodeEnvelope(kManifestEnvMagic, verify, &verified_body).ok() ||
      verified_body != out) {
    return Status::Corruption("manifest verify-after-write failed: " + path);
  }
  VDB_RETURN_NOT_OK(options_.fs->Write(CurrentPath(), path));
  // Committed; older manifests are garbage now (best-effort cleanup).
  if (seq > 1) (void)options_.fs->Delete(ManifestPathFor(seq - 1));
  (void)options_.fs->Delete(ManifestPath());  // Legacy single-file layout.
  return Status::OK();
}

Result<std::string> Collection::ResolveManifestBody() {
  // 1) Follow CURRENT. 2) If CURRENT is missing, torn, or names a missing/
  // corrupt manifest, scan for the newest MANIFEST-<seq> that passes its
  // CRC. 3) Fall back to the legacy unframed MANIFEST object.
  auto try_load = [&](const std::string& path) -> Result<std::string> {
    std::string frame;
    VDB_RETURN_NOT_OK(options_.fs->Read(path, &frame));
    std::string body;
    VDB_RETURN_NOT_OK(DecodeEnvelope(kManifestEnvMagic, frame, &body));
    return body;
  };

  std::string current;
  Status current_status = options_.fs->Read(CurrentPath(), &current);
  if (current_status.ok()) {
    auto loaded = try_load(current);
    if (loaded.ok()) {
      // Resume sequence numbering after the committed manifest.
      const std::string prefix = ManifestPath() + "-";
      if (current.compare(0, prefix.size(), prefix) == 0) {
        const uint64_t seq = std::strtoull(
            current.c_str() + prefix.size(), nullptr, 10);
        uint64_t expected = next_manifest_seq_.load();
        while (seq + 1 > expected &&
               !next_manifest_seq_.compare_exchange_weak(expected, seq + 1)) {
        }
      }
      return loaded;
    }
  }

  auto listed = options_.fs->List(ManifestPath() + "-");
  if (listed.ok()) {
    std::vector<std::pair<uint64_t, std::string>> candidates;
    const size_t prefix_len = ManifestPath().size() + 1;
    for (const std::string& path : listed.value()) {
      candidates.emplace_back(
          std::strtoull(path.c_str() + prefix_len, nullptr, 10), path);
    }
    std::sort(candidates.rbegin(), candidates.rend());
    for (const auto& [seq, path] : candidates) {
      auto loaded = try_load(path);
      if (!loaded.ok()) continue;
      uint64_t expected = next_manifest_seq_.load();
      while (seq + 1 > expected &&
             !next_manifest_seq_.compare_exchange_weak(expected, seq + 1)) {
      }
      return loaded;
    }
  }

  std::string legacy;
  Status legacy_status = options_.fs->Read(ManifestPath(), &legacy);
  if (legacy_status.ok()) return legacy;
  if (!current_status.ok() && !current_status.IsNotFound()) {
    return current_status;  // e.g. transient storage failure, not absence.
  }
  return Status::NotFound("no committed manifest for " + schema_.name);
}

Status Collection::RecoverFromStorage() {
  auto resolved = ResolveManifestBody();
  if (!resolved.ok()) return resolved.status();
  const std::string manifest = std::move(resolved).value();
  BinaryReader reader(manifest);
  uint32_t magic;
  if (!reader.GetU32(&magic) || magic != kManifestMagic) {
    return Status::Corruption("bad manifest magic");
  }
  std::string schema_blob;
  uint64_t next_segment, next_row, num_segments;
  if (!reader.GetString(&schema_blob) || !reader.GetU64(&next_segment) ||
      !reader.GetU64(&next_row) || !reader.GetU64(&num_segments)) {
    return Status::Corruption("truncated manifest");
  }
  auto schema = CollectionSchema::Deserialize(schema_blob);
  if (!schema.ok()) return schema.status();
  schema_ = std::move(schema).value();
  memtable_ =
      std::make_unique<storage::MemTable>(schema_.ToSegmentSchema());
  next_segment_id_.store(next_segment);
  next_row_id_.store(next_row);

  std::vector<storage::SegmentPtr> segments;
  for (uint64_t i = 0; i < num_segments; ++i) {
    uint64_t id;
    if (!reader.GetU64(&id)) return Status::Corruption("truncated manifest");
    auto loaded = LoadSegment(id);
    if (!loaded.ok()) return loaded.status();
    segments.push_back(std::move(loaded).value());
  }
  std::vector<RowId> tombstone_rows;
  std::vector<SegmentId> tombstone_marks;
  if (!reader.GetVector(&tombstone_rows) ||
      !reader.GetVector(&tombstone_marks) ||
      tombstone_rows.size() != tombstone_marks.size()) {
    return Status::Corruption("truncated manifest tombstones");
  }
  snapshot_manager_.Commit([&](storage::Snapshot* snap) {
    snap->segments = segments;
    auto tombs = std::make_shared<storage::TombstoneMap>();
    for (size_t i = 0; i < tombstone_rows.size(); ++i) {
      (*tombs)[tombstone_rows[i]] = tombstone_marks[i];
    }
    snap->tombstones = std::move(tombs);
  });

  // Replay the WAL tail (operations after the last manifest persist).
  return wal_->Replay([this](const storage::WalRecord& record) -> Status {
    switch (record.type) {
      case storage::WalOpType::kInsert: {
        auto entity = Entity::Deserialize(record.payload);
        if (!entity.ok()) return entity.status();
        const Entity& e = entity.value();
        std::vector<const float*> fields;
        for (const auto& vec : e.vectors) fields.push_back(vec.data());
        uint64_t expected = next_row_id_.load();
        while (static_cast<uint64_t>(e.id) >= expected &&
               !next_row_id_.compare_exchange_weak(expected, e.id + 1)) {
        }
        return memtable_->Insert(e.id, fields, e.attributes);
      }
      case storage::WalOpType::kDelete: {
        BinaryReader payload(record.payload);
        RowId row_id;
        if (!payload.GetI64(&row_id)) {
          return Status::Corruption("bad delete payload");
        }
        if (!memtable_->Delete(row_id)) {
          const SegmentId watermark = next_segment_id_.load();
          snapshot_manager_.Commit([&](storage::Snapshot* snap) {
            auto tombs =
                std::make_shared<storage::TombstoneMap>(*snap->tombstones);
            SegmentId& mark = (*tombs)[row_id];
            mark = std::max(mark, watermark);
            snap->tombstones = std::move(tombs);
          });
        }
        return Status::OK();
      }
      default:
        return Status::OK();
    }
  });
}

Status Collection::PersistSegment(const storage::SegmentPtr& segment) {
  std::string blob;
  VDB_RETURN_NOT_OK(segment->Serialize(&blob));
  const std::string path = SegmentPath(segment->id());
  VDB_RETURN_NOT_OK(
      options_.fs->Write(path, EncodeEnvelope(kSegmentEnvMagic, blob)));
  // Verify-after-write: a torn or bit-flipped segment write surfaces as a
  // flush error now instead of silent corruption at query time.
  std::string verify;
  VDB_RETURN_NOT_OK(options_.fs->Read(path, &verify));
  std::string body;
  if (!DecodeEnvelope(kSegmentEnvMagic, verify, &body).ok() ||
      Crc32(body) != Crc32(blob)) {
    return Status::Corruption("segment verify-after-write failed: " + path);
  }
  return Status::OK();
}

Result<storage::SegmentPtr> Collection::LoadSegment(SegmentId id) const {
  return buffer_pool_.Fetch(id, [&]() -> Result<storage::SegmentPtr> {
    std::string blob;
    VDB_RETURN_NOT_OK(options_.fs->Read(SegmentPath(id), &blob));
    // CRC-framed since the fault-injection work; bare blobs are legacy.
    BinaryReader probe(blob);
    uint32_t magic;
    if (probe.GetU32(&magic) && magic == kSegmentEnvMagic) {
      std::string body;
      VDB_RETURN_NOT_OK(DecodeEnvelope(kSegmentEnvMagic, blob, &body));
      return storage::Segment::Deserialize(body);
    }
    return storage::Segment::Deserialize(blob);
  });
}

Status Collection::ValidateEntity(const Entity& entity) const {
  if (entity.vectors.size() != schema_.vector_fields.size()) {
    return Status::InvalidArgument("entity vector field count mismatch");
  }
  for (size_t f = 0; f < entity.vectors.size(); ++f) {
    if (entity.vectors[f].size() != schema_.vector_fields[f].dim) {
      return Status::InvalidArgument("entity vector dim mismatch in field " +
                                     schema_.vector_fields[f].name);
    }
  }
  if (entity.attributes.size() != schema_.attributes.size()) {
    return Status::InvalidArgument("entity attribute count mismatch");
  }
  return Status::OK();
}

RowId Collection::AllocateRowIds(size_t count) {
  return static_cast<RowId>(next_row_id_.fetch_add(count));
}

uint64_t Collection::next_row_id() const { return next_row_id_.load(); }

Status Collection::LogAndApplyInsert(const Entity& entity) {
  // Materialize to the log first (Sec 5.1), then apply to the MemTable.
  storage::WalRecord record;
  record.type = storage::WalOpType::kInsert;
  record.collection = schema_.name;
  entity.Serialize(&record.payload);
  VDB_RETURN_NOT_OK(wal_->Append(&record));

  std::vector<const float*> fields;
  fields.reserve(entity.vectors.size());
  for (const auto& vec : entity.vectors) fields.push_back(vec.data());
  return memtable_->Insert(entity.id, fields, entity.attributes);
}

Status Collection::Insert(const Entity& entity) {
  VDB_RETURN_NOT_OK(ValidateEntity(entity));
  std::lock_guard<std::mutex> lock(write_mu_);
  Entity to_insert = entity;
  if (to_insert.id == kInvalidRowId) {
    to_insert.id = AllocateRowIds(1);
  } else {
    uint64_t expected = next_row_id_.load();
    while (static_cast<uint64_t>(to_insert.id) >= expected &&
           !next_row_id_.compare_exchange_weak(expected, to_insert.id + 1)) {
    }
  }
  return LogAndApplyInsert(to_insert);
}

Status Collection::InsertBatch(const std::vector<Entity>& entities) {
  for (const Entity& entity : entities) {
    VDB_RETURN_NOT_OK(Insert(entity));
  }
  return Status::OK();
}

Status Collection::Delete(RowId row_id) {
  std::lock_guard<std::mutex> lock(write_mu_);
  storage::WalRecord record;
  record.type = storage::WalOpType::kDelete;
  record.collection = schema_.name;
  record.payload = EncodeDeletePayload(row_id);
  VDB_RETURN_NOT_OK(wal_->Append(&record));

  if (memtable_->Delete(row_id)) return Status::OK();  // Never flushed.
  // Every physical copy currently on disk lives in a segment with id below
  // the watermark; a later re-insert flushes above it and stays visible.
  const SegmentId watermark = next_segment_id_.load();
  snapshot_manager_.Commit([&](storage::Snapshot* snap) {
    auto tombs = std::make_shared<storage::TombstoneMap>(*snap->tombstones);
    SegmentId& mark = (*tombs)[row_id];
    mark = std::max(mark, watermark);
    snap->tombstones = std::move(tombs);
  });
  return Status::OK();
}

Status Collection::Update(const Entity& entity) {
  if (entity.id == kInvalidRowId) {
    return Status::InvalidArgument("update requires an explicit row id");
  }
  VDB_RETURN_NOT_OK(Delete(entity.id));
  return Insert(entity);
}

Status Collection::Flush() {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (memtable_->num_rows() == 0) return Status::OK();

  const SegmentId segment_id = next_segment_id_.fetch_add(1);
  auto flushed = memtable_->Flush(segment_id);
  if (!flushed.ok()) return flushed.status();
  storage::SegmentPtr segment = std::move(flushed).value();
  if (segment == nullptr) return Status::OK();

  // Index large segments immediately; small ones stay flat (Sec 2.3).
  if (segment->num_rows() >= options_.index_build_threshold_rows) {
    for (size_t f = 0; f < schema_.vector_fields.size(); ++f) {
      auto created = index::CreateIndex(schema_.default_index,
                                        schema_.vector_fields[f].dim,
                                        schema_.metric, schema_.index_params);
      if (!created.ok()) return created.status();
      index::IndexPtr idx = std::move(created).value();
      VDB_RETURN_NOT_OK(idx->Build(segment->vectors(f), segment->num_rows()));
      segment->SetIndex(f, std::move(idx));
    }
  }

  VDB_RETURN_NOT_OK(PersistSegment(segment));
  snapshot_manager_.Commit([&](storage::Snapshot* snap) {
    snap->segments.push_back(segment);
  });
  VDB_RETURN_NOT_OK(PersistManifest());
  return wal_->Reset();  // All logged operations are now durable as state.
}

Status Collection::RunMergeOnce(size_t* merges_done) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (merges_done != nullptr) *merges_done = 0;
  const storage::SnapshotPtr snapshot = snapshot_manager_.Acquire();

  std::vector<storage::SegmentInfo> infos;
  infos.reserve(snapshot->segments.size());
  for (const auto& segment : snapshot->segments) {
    infos.push_back({segment->id(), segment->num_rows()});
  }
  const auto groups = PickMerges(infos, options_.merge_policy);
  if (groups.empty()) return Status::OK();

  for (const storage::MergeGroup& group : groups) {
    std::vector<storage::SegmentPtr> sources;
    for (SegmentId id : group) {
      for (const auto& segment : snapshot->segments) {
        if (segment->id() == id) sources.push_back(segment);
      }
    }

    const SegmentId merged_id = next_segment_id_.fetch_add(1);
    storage::SegmentBuilder builder(merged_id, schema_.ToSegmentSchema());
    std::vector<RowId> applied_tombstones;
    for (const auto& source : sources) {
      for (size_t pos = 0; pos < source->num_rows(); ++pos) {
        const RowId row_id = source->row_id_at(pos);
        if (snapshot->IsDeleted(row_id, source->id())) {
          // Obsoleted vectors are removed during merge (Sec 2.3).
          applied_tombstones.push_back(row_id);
          continue;
        }
        std::vector<const float*> fields;
        for (size_t f = 0; f < schema_.vector_fields.size(); ++f) {
          fields.push_back(source->vector(f, pos));
        }
        std::vector<double> attrs;
        for (size_t a = 0; a < schema_.attributes.size(); ++a) {
          attrs.push_back(source->attribute(a).ValueAt(pos));
        }
        VDB_RETURN_NOT_OK(builder.AddRow(row_id, fields, attrs));
      }
    }
    auto built = builder.Finish();
    if (!built.ok()) return built.status();
    storage::SegmentPtr merged = std::move(built).value();

    if (merged->num_rows() >= options_.index_build_threshold_rows) {
      for (size_t f = 0; f < schema_.vector_fields.size(); ++f) {
        auto created = index::CreateIndex(
            schema_.default_index, schema_.vector_fields[f].dim,
            schema_.metric, schema_.index_params);
        if (!created.ok()) return created.status();
        index::IndexPtr idx = std::move(created).value();
        VDB_RETURN_NOT_OK(idx->Build(merged->vectors(f), merged->num_rows()));
        merged->SetIndex(f, std::move(idx));
      }
    }
    VDB_RETURN_NOT_OK(PersistSegment(merged));

    snapshot_manager_.Commit([&](storage::Snapshot* snap) {
      auto& segs = snap->segments;
      segs.erase(std::remove_if(segs.begin(), segs.end(),
                                [&](const storage::SegmentPtr& s) {
                                  return std::find(group.begin(), group.end(),
                                                   s->id()) != group.end();
                                }),
                 segs.end());
      segs.push_back(merged);
      if (!applied_tombstones.empty()) {
        auto tombs =
            std::make_shared<storage::TombstoneMap>(*snap->tombstones);
        for (RowId id : applied_tombstones) tombs->erase(id);
        snap->tombstones = std::move(tombs);
      }
    });
    if (merges_done != nullptr) ++(*merges_done);
  }
  return PersistManifest();
}

Status Collection::BuildIndexes(size_t* built) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (built != nullptr) *built = 0;
  const storage::SnapshotPtr snapshot = snapshot_manager_.Acquire();
  for (const auto& segment : snapshot->segments) {
    if (segment->num_rows() < options_.index_build_threshold_rows) continue;
    bool missing = false;
    for (size_t f = 0; f < schema_.vector_fields.size(); ++f) {
      if (!segment->HasIndex(f)) missing = true;
    }
    if (!missing) continue;

    // Copy-on-write: a new version of the segment gets the index (Sec 5.2 —
    // a new segment version whenever data or index changes).
    std::string blob;
    VDB_RETURN_NOT_OK(segment->Serialize(&blob));
    auto copied = storage::Segment::Deserialize(blob);
    if (!copied.ok()) return copied.status();
    storage::SegmentPtr indexed = std::move(copied).value();
    for (size_t f = 0; f < schema_.vector_fields.size(); ++f) {
      if (indexed->HasIndex(f)) continue;
      auto created = index::CreateIndex(schema_.default_index,
                                        schema_.vector_fields[f].dim,
                                        schema_.metric, schema_.index_params);
      if (!created.ok()) return created.status();
      index::IndexPtr idx = std::move(created).value();
      VDB_RETURN_NOT_OK(
          idx->Build(indexed->vectors(f), indexed->num_rows()));
      indexed->SetIndex(f, std::move(idx));
    }
    VDB_RETURN_NOT_OK(PersistSegment(indexed));
    buffer_pool_.Invalidate(indexed->id());
    snapshot_manager_.Commit([&](storage::Snapshot* snap) {
      for (auto& s : snap->segments) {
        if (s->id() == indexed->id()) s = indexed;
      }
    });
    if (built != nullptr) ++(*built);
  }
  return Status::OK();
}

size_t Collection::CollectGarbage() {
  return snapshot_manager_.CollectGarbage();
}

size_t Collection::NumLiveRows() const {
  const storage::SnapshotPtr snapshot = snapshot_manager_.Acquire();
  size_t rows = 0;
  for (const auto& segment : snapshot->segments) {
    for (size_t pos = 0; pos < segment->num_rows(); ++pos) {
      if (!snapshot->IsDeleted(segment->row_id_at(pos), segment->id())) {
        ++rows;
      }
    }
  }
  return rows;
}

size_t Collection::NumSegments() const {
  return snapshot_manager_.Acquire()->segments.size();
}

void Collection::SearchSegment(const storage::Segment& segment, size_t field,
                               const float* query, const QueryOptions& options,
                               size_t k, const storage::Snapshot& snapshot,
                               ResultHeap* heap) const {
  // Tombstone allow-filter over local positions (only when needed).
  Bitset allowed;
  const Bitset* filter = nullptr;
  if (snapshot.tombstones != nullptr && !snapshot.tombstones->empty()) {
    bool any_deleted = false;
    allowed.Resize(segment.num_rows(), true);
    for (const auto& [dead, watermark] : *snapshot.tombstones) {
      if (segment.id() >= watermark) continue;  // Newer re-inserted copy.
      if (auto pos = segment.PositionOf(dead)) {
        allowed.Clear(*pos);
        any_deleted = true;
      }
    }
    if (any_deleted) filter = &allowed;
  }

  const size_t dim = schema_.vector_fields[field].dim;
  const index::VectorIndex* idx = segment.GetIndex(field);
  if (idx != nullptr) {
    index::SearchOptions idx_options;
    idx_options.k = k;
    idx_options.nprobe = options.nprobe;
    idx_options.ef_search = std::max(options.ef_search, k);
    idx_options.filter = filter;
    std::vector<HitList> results;
    if (idx->Search(query, 1, idx_options, &results).ok()) {
      for (const SearchHit& hit : results[0]) {
        heap->Push(segment.row_id_at(static_cast<size_t>(hit.id)), hit.score);
      }
      return;
    }
  }
  // Flat scan fallback for small / index-less segments.
  for (size_t pos = 0; pos < segment.num_rows(); ++pos) {
    if (filter != nullptr && !filter->Test(pos)) continue;
    const float score = simd::ComputeFloatScore(
        schema_.metric, query, segment.vector(field, pos), dim);
    heap->Push(segment.row_id_at(pos), score);
  }
}

Result<std::vector<HitList>> Collection::Search(
    const std::string& field, const float* queries, size_t nq,
    const QueryOptions& options) const {
  return SearchScoped(field, queries, nq, options,
                      [](SegmentId) { return true; });
}

Result<std::vector<HitList>> Collection::SearchScoped(
    const std::string& field, const float* queries, size_t nq,
    const QueryOptions& options,
    const std::function<bool(SegmentId)>& owns) const {
  const int f = schema_.FieldIndex(field);
  if (f < 0) return Status::NotFound("unknown vector field: " + field);
  const storage::SnapshotPtr snapshot = snapshot_manager_.Acquire();

  // Resolve the shard predicate once per call, not per (segment, query).
  std::vector<const storage::Segment*> owned;
  owned.reserve(snapshot->segments.size());
  for (const auto& segment : snapshot->segments) {
    if (owns(segment->id())) owned.push_back(segment.get());
  }

  const size_t dim = schema_.vector_fields[f].dim;
  std::vector<ResultHeap> heaps;
  heaps.reserve(nq);
  for (size_t q = 0; q < nq; ++q) {
    heaps.push_back(ResultHeap::ForMetric(options.k, schema_.metric));
  }

  for (const storage::Segment* segment : owned) {
    // Index-less segments with a multi-query batch go through the
    // cache-aware blocked searcher (Sec 3.2.1) — tombstoned segments and
    // indexed segments take the per-query path in SearchSegment.
    const bool has_tombstones_here = [&] {
      if (snapshot->tombstones == nullptr) return false;
      for (const auto& [dead, watermark] : *snapshot->tombstones) {
        if (segment->id() < watermark && segment->PositionOf(dead)) {
          return true;
        }
      }
      return false;
    }();
    if (nq > 1 && segment->GetIndex(f) == nullptr && !has_tombstones_here) {
      engine::BatchSearchSpec spec;
      spec.metric = schema_.metric;
      spec.dim = dim;
      spec.k = options.k;
      engine::CacheAwareBatchSearcher searcher(nullptr);
      std::vector<HitList> results;
      if (searcher
              .Search(segment->vectors(f), segment->num_rows(), queries, nq,
                      spec, &results)
              .ok()) {
        for (size_t q = 0; q < nq; ++q) {
          for (const SearchHit& hit : results[q]) {
            heaps[q].Push(segment->row_id_at(static_cast<size_t>(hit.id)),
                          hit.score);
          }
        }
        continue;
      }
    }
    for (size_t q = 0; q < nq; ++q) {
      SearchSegment(*segment, static_cast<size_t>(f), queries + q * dim,
                    options, options.k, *snapshot, &heaps[q]);
    }
  }

  std::vector<HitList> out(nq);
  for (size_t q = 0; q < nq; ++q) out[q] = heaps[q].TakeSorted();
  return out;
}

Result<HitList> Collection::SearchFiltered(
    const std::string& field, const float* query, const std::string& attribute,
    const query::AttrRange& range, const QueryOptions& options) const {
  const int f = schema_.FieldIndex(field);
  if (f < 0) return Status::NotFound("unknown vector field: " + field);
  const int a = schema_.AttributeIdx(attribute);
  if (a < 0) return Status::NotFound("unknown attribute: " + attribute);
  const storage::SnapshotPtr snapshot = snapshot_manager_.Acquire();

  const size_t dim = schema_.vector_fields[f].dim;
  ResultHeap heap = ResultHeap::ForMetric(options.k, schema_.metric);

  for (const auto& segment : snapshot->segments) {
    const auto& column = segment->attribute(static_cast<size_t>(a));
    const size_t passing = column.CountInRange(range.lo, range.hi);
    if (passing == 0) continue;

    // Per-segment cost-based strategy (Sec 4.1 strategy D).
    query::CostModelInputs inputs;
    inputs.n = segment->num_rows();
    inputs.dim = dim;
    inputs.k = options.k;
    inputs.pass_fraction =
        static_cast<double>(passing) / static_cast<double>(segment->num_rows());
    inputs.theta = options.theta;
    const index::VectorIndex* idx = segment->GetIndex(f);
    if (const auto* ivf = dynamic_cast<const index::IvfIndex*>(idx)) {
      inputs.nlist = ivf->nlist();
      inputs.nprobe = options.nprobe;
    }
    query::FilterStrategy strategy =
        idx == nullptr ? query::FilterStrategy::kA
                       : query::ChooseStrategy(inputs);

    switch (strategy) {
      case query::FilterStrategy::kA: {
        std::vector<RowId> candidates;
        column.CollectInRange(range.lo, range.hi, &candidates);
        for (RowId row_id : candidates) {
          if (snapshot->IsDeleted(row_id, segment->id())) continue;
          const auto pos = segment->PositionOf(row_id);
          if (!pos) continue;
          heap.Push(row_id, simd::ComputeFloatScore(
                                schema_.metric, query,
                                segment->vector(f, *pos), dim));
        }
        break;
      }
      case query::FilterStrategy::kC: {
        const size_t fetch = std::max<size_t>(
            options.k, static_cast<size_t>(options.theta * options.k));
        index::SearchOptions idx_options;
        idx_options.k = fetch;
        idx_options.nprobe = options.nprobe;
        idx_options.ef_search = std::max(options.ef_search, fetch);
        std::vector<HitList> results;
        VDB_RETURN_NOT_OK(idx->Search(query, 1, idx_options, &results));
        size_t taken = 0;
        for (const SearchHit& hit : results[0]) {
          const size_t pos = static_cast<size_t>(hit.id);
          const RowId row_id = segment->row_id_at(pos);
          if (snapshot->IsDeleted(row_id, segment->id())) continue;
          const double value = column.ValueAt(pos);
          if (value < range.lo || value > range.hi) continue;
          heap.Push(row_id, hit.score);
          if (++taken == options.k) break;
        }
        break;
      }
      default: {  // Strategy B.
        std::vector<RowId> candidates;
        column.CollectInRange(range.lo, range.hi, &candidates);
        Bitset allowed(segment->num_rows());
        for (RowId row_id : candidates) {
          if (snapshot->IsDeleted(row_id, segment->id())) continue;
          if (auto pos = segment->PositionOf(row_id)) allowed.Set(*pos);
        }
        index::SearchOptions idx_options;
        idx_options.k = options.k;
        idx_options.nprobe = options.nprobe;
        idx_options.ef_search = std::max(options.ef_search, options.k);
        idx_options.filter = &allowed;
        std::vector<HitList> results;
        VDB_RETURN_NOT_OK(idx->Search(query, 1, idx_options, &results));
        for (const SearchHit& hit : results[0]) {
          heap.Push(segment->row_id_at(static_cast<size_t>(hit.id)),
                    hit.score);
        }
        break;
      }
    }
  }
  return heap.TakeSorted();
}

Result<HitList> Collection::MultiVectorSearch(
    const std::vector<const float*>& query, const std::vector<float>& weights,
    const QueryOptions& options) const {
  const size_t mu = schema_.vector_fields.size();
  if (query.size() != mu) {
    return Status::InvalidArgument("one query vector per field required");
  }
  if (!weights.empty() && weights.size() != mu) {
    return Status::InvalidArgument("one weight per field required");
  }
  auto weight = [&](size_t f) { return weights.empty() ? 1.0f : weights[f]; };
  const storage::SnapshotPtr snapshot = snapshot_manager_.Acquire();
  const bool keep_largest = MetricIsSimilarity(schema_.metric);

  // Random-access exact aggregated score of one entity.
  auto exact_score = [&](RowId row_id, float* out) -> bool {
    for (const auto& segment : snapshot->segments) {
      if (snapshot->IsDeleted(row_id, segment->id())) continue;
      const auto pos = segment->PositionOf(row_id);
      if (!pos) continue;
      float total = 0.0f;
      for (size_t f = 0; f < mu; ++f) {
        total += weight(f) * simd::ComputeFloatScore(
                                 schema_.metric, query[f],
                                 segment->vector(f, *pos),
                                 schema_.vector_fields[f].dim);
      }
      *out = total;
      return true;
    }
    return false;
  };

  // Iterative merging (Algorithm 2) across segments: per-field top-k' with
  // adaptive doubling; the stop test compares the k-th exact aggregate with
  // the frontier bound of unseen entities.
  size_t k_prime = options.k;
  const size_t total_rows = snapshot->TotalRows();
  HitList best;
  while (true) {
    std::vector<HitList> lists(mu);
    QueryOptions field_options = options;
    field_options.k = k_prime;
    bool exhausted = true;
    for (size_t f = 0; f < mu; ++f) {
      auto result = Search(schema_.vector_fields[f].name, query[f], 1,
                           field_options);
      if (!result.ok()) return result.status();
      lists[f] = std::move(result.value()[0]);
      if (lists[f].size() >= k_prime) exhausted = false;
    }

    // Frontier bound: the best aggregate any unseen entity could have.
    float bound = 0.0f;
    bool bound_valid = true;
    for (size_t f = 0; f < mu; ++f) {
      if (lists[f].empty()) {
        bound_valid = false;
        break;
      }
      bound += weight(f) * lists[f].back().score;
    }

    std::unordered_set<RowId> candidates;
    for (const auto& list : lists) {
      for (const SearchHit& hit : list) candidates.insert(hit.id);
    }
    ResultHeap heap = ResultHeap::ForMetric(options.k, schema_.metric);
    for (RowId id : candidates) {
      float score;
      if (exact_score(id, &score)) heap.Push(id, score);
    }
    best = heap.TakeSorted();

    const bool determined =
        best.size() >= options.k && bound_valid &&
        (keep_largest ? best[options.k - 1].score >= bound
                      : best[options.k - 1].score <= bound);
    // Footnote 5: Milvus caps k' at 16384 to bound data movement.
    constexpr size_t kPrimeCeiling = 16384;
    if (determined || exhausted || k_prime >= total_rows ||
        k_prime >= kPrimeCeiling) {
      break;
    }
    k_prime *= 2;
  }
  return best;
}

Result<Entity> Collection::Get(RowId row_id) const {
  const storage::SnapshotPtr snapshot = snapshot_manager_.Acquire();
  for (const auto& segment : snapshot->segments) {
    if (snapshot->IsDeleted(row_id, segment->id())) continue;
    const auto pos = segment->PositionOf(row_id);
    if (!pos) continue;
    Entity entity;
    entity.id = row_id;
    for (size_t f = 0; f < schema_.vector_fields.size(); ++f) {
      const size_t dim = schema_.vector_fields[f].dim;
      const float* vec = segment->vector(f, *pos);
      entity.vectors.emplace_back(vec, vec + dim);
    }
    for (size_t a = 0; a < schema_.attributes.size(); ++a) {
      entity.attributes.push_back(segment->attribute(a).ValueAt(*pos));
    }
    return entity;
  }
  return Status::NotFound("row not found (or not yet flushed)");
}

}  // namespace db
}  // namespace vectordb
