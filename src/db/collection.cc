#include "db/collection.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <thread>
#include <unordered_set>

#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/logger.h"
#include "common/result_heap.h"
#include "common/timer.h"
#include "exec/segment_executor.h"
#include "index/index_factory.h"
#include "obs/catalog.h"

namespace vectordb {
namespace db {

// The tier loaders wired in WireSegmentTiers() are std::functions invoked
// under the owning segment's tier_mu_ and reading through the virtual
// FileSystem — invisible to the static call analysis, so declared.
VDB_ACQUIRED_BEFORE(kSegmentTier, kFsMemory);

namespace {
constexpr uint32_t kManifestMagic = 0x464E4D56;  // "VMNF"

std::string EncodeDeletePayload(RowId row_id) {
  std::string payload;
  BinaryWriter writer(&payload);
  writer.PutI64(row_id);
  return payload;
}

size_t ResolveQueryThreads(size_t configured) {
  if (configured != 0) return configured;
  const size_t hw = std::thread::hardware_concurrency();
  return std::min<size_t>(hw == 0 ? 1 : hw, 8);
}
}  // namespace

Collection::Collection(CollectionSchema schema,
                       const CollectionOptions& options)
    : schema_(std::move(schema)),
      options_(options),
      buffer_pool_(
          std::make_shared<storage::BufferPool>(options.buffer_pool_bytes)) {
  wal_ = std::make_unique<storage::WriteAheadLog>(options_.fs, WalPath());
  memtable_ =
      std::make_unique<storage::MemTable>(schema_.ToSegmentSchema());
  segment_store_ =
      std::make_shared<storage::SegmentStore>(options_.fs, SegmentsPrefix());
  const size_t query_threads = ResolveQueryThreads(options_.query_threads);
  if (query_threads > 1) {
    query_pool_ = std::make_unique<ThreadPool>(query_threads);
  }
  snapshot_manager_.SetDropHandler([this](SegmentId id) {
    buffer_pool_->Invalidate(id);
    // Best-effort: undeleted data/index artifacts are unreferenced garbage
    // that the next GC pass retries.
    segment_store_->DeleteSegmentArtifacts(id).IgnoreError();
  });
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const obs::Labels labels = {{"collection", schema_.name}};
  queries_total_ = registry.GetCounter(
      "vdb_db_queries_total", "Query vectors executed per collection.",
      labels);
  query_seconds_total_ = registry.GetGauge(
      "vdb_db_query_seconds_total",
      "Cumulative query wall-clock seconds per collection.", labels);
  slow_queries_total_ = registry.GetCounter(
      "vdb_db_slow_queries_total",
      "Queries over the slow-query-log threshold per collection.", labels);
}

void Collection::FinishQuery(const exec::QueryContext& ctx,
                             const Status& status, const char* op) const {
  const exec::QueryStats& stats = ctx.stats();
  exec::RecordQueryMetrics(stats, status);
  queries_total_->Inc(stats.queries);
  query_seconds_total_->Add(stats.total_seconds);
  const double threshold = options_.slow_query_log_seconds;
  if (threshold > 0.0 && stats.total_seconds >= threshold) {
    slow_queries_total_->Inc();
    obs::Exec().slow_queries->Inc();
    VDB_WARN << "slow query: collection=" << schema_.name << " op=" << op
             << " total=" << stats.total_seconds << "s (threshold="
             << threshold << "s) status=" << status.ToString() << "\n"
             << ctx.trace().Dump();
  }
}

std::string Collection::SegmentsPrefix() const {
  return options_.data_prefix + schema_.name + "/segments/";
}

std::string Collection::ManifestPath() const {
  return options_.data_prefix + schema_.name + "/MANIFEST";
}

std::string Collection::ManifestPathFor(uint64_t seq) const {
  return ManifestPath() + "-" + std::to_string(seq);
}

std::string Collection::CurrentPath() const {
  return options_.data_prefix + schema_.name + "/CURRENT";
}

std::string Collection::WalPath() const {
  return options_.data_prefix + schema_.name + "/WAL";
}

Result<std::unique_ptr<Collection>> Collection::Create(
    const CollectionSchema& schema, const CollectionOptions& options) {
  VDB_RETURN_NOT_OK(schema.Validate());
  if (options.fs == nullptr) {
    return Status::InvalidArgument("a FileSystem is required");
  }
  std::unique_ptr<Collection> collection(new Collection(schema, options));
  for (const std::string& marker :
       {collection->CurrentPath(), collection->ManifestPath()}) {
    auto exists = options.fs->Exists(marker);
    if (!exists.ok()) return exists.status();
    if (exists.value()) {
      return Status::AlreadyExists("collection exists: " + schema.name);
    }
  }
  VDB_RETURN_NOT_OK(collection->PersistManifest());
  return collection;
}

Result<std::unique_ptr<Collection>> Collection::Open(
    const std::string& name, const CollectionOptions& options) {
  if (options.fs == nullptr) {
    return Status::InvalidArgument("a FileSystem is required");
  }
  // Load the manifest to learn the schema, then rebuild state.
  CollectionSchema bootstrap;
  bootstrap.name = name;
  bootstrap.vector_fields.push_back({"_", 1});  // Replaced by manifest.
  std::unique_ptr<Collection> collection(
      new Collection(bootstrap, options));
  VDB_RETURN_NOT_OK(collection->RecoverFromStorage());
  return collection;
}

Status Collection::PersistManifest() {
  std::string out;
  BinaryWriter writer(&out);
  writer.PutU32(kManifestMagic);
  std::string schema_blob;
  schema_.Serialize(&schema_blob);
  writer.PutString(schema_blob);
  writer.PutU64(next_segment_id_.load());
  writer.PutU64(next_row_id_.load());

  const storage::SnapshotPtr snapshot = snapshot_manager_.Acquire();
  writer.PutU64(snapshot->segments.size());
  for (const auto& segment : snapshot->segments) {
    writer.PutU64(segment->id());
  }
  std::vector<RowId> tombstone_rows;
  std::vector<SegmentId> tombstone_marks;
  for (const auto& [row_id, watermark] : *snapshot->tombstones) {
    tombstone_rows.push_back(row_id);
    tombstone_marks.push_back(watermark);
  }
  writer.PutVector(tombstone_rows);
  writer.PutVector(tombstone_marks);

  // Index-version extension (manifest v2, reader-optional): the version
  // stamp of every published index artifact, per segment, in the same
  // order as the segment-id list above. Publishing an index IS this write:
  // the .idx artifact exists on storage first, and the manifest flip makes
  // it visible atomically. Old readers ignore the trailing bytes; old
  // manifests simply stop before them.
  writer.PutU64(next_index_version_.load());
  for (const auto& segment : snapshot->segments) {
    const auto entries = segment->IndexEntries();
    writer.PutU64(entries.size());
    for (const auto& [field, version] : entries) {
      writer.PutU32(field);
      writer.PutU64(version);
    }
  }

  // Atomic commit protocol (LevelDB CURRENT-style, object-store friendly):
  // write MANIFEST-<seq> framed with a CRC, read it back to verify, then
  // flip the CURRENT pointer. A crash at any point leaves CURRENT naming
  // the previous fully-verified manifest, so recovery never parses a
  // half-written one.
  const std::string frame =
      storage::EncodeEnvelope(storage::kManifestEnvMagic, out);
  const uint64_t seq = next_manifest_seq_.fetch_add(1);
  const std::string path = ManifestPathFor(seq);
  VDB_RETURN_NOT_OK(options_.fs->Write(path, frame));
  // Aborting the commit must also unwrite the manifest: recovery's scan
  // fallback adopts the newest CRC-valid MANIFEST-<seq>, so a verified
  // file left behind by a *failed* commit would let a later reader jump
  // forward to state that was never published (and never mirrored to
  // anyone else). Best-effort — a crash here leaves the orphan, but then
  // the writer is gone and adopting its last fully-written manifest is the
  // normal crash-recovery contract.
  auto abort_commit = [&](Status status) {
    options_.fs->Delete(path).IgnoreError();
    return status;
  };
  std::string verify;
  Status read_back = options_.fs->Read(path, &verify);
  if (!read_back.ok()) return abort_commit(std::move(read_back));
  std::string verified_body;
  if (!storage::DecodeEnvelope(storage::kManifestEnvMagic, verify,
                               &verified_body)
           .ok() ||
      verified_body != out) {
    return abort_commit(
        Status::Corruption("manifest verify-after-write failed: " + path));
  }
  Status flipped = options_.fs->Write(CurrentPath(), path);
  if (!flipped.ok()) return abort_commit(std::move(flipped));
  // Committed; older manifests are garbage now (best-effort cleanup).
  if (seq > 1) options_.fs->Delete(ManifestPathFor(seq - 1)).IgnoreError();
  // Legacy single-file layout.
  options_.fs->Delete(ManifestPath()).IgnoreError();
  return Status::OK();
}

Result<std::string> Collection::ResolveManifestBody() {
  // 1) Follow CURRENT. 2) If CURRENT is missing, torn, or names a missing/
  // corrupt manifest, scan for the newest MANIFEST-<seq> that passes its
  // CRC. 3) Fall back to the legacy unframed MANIFEST object.
  auto try_load = [&](const std::string& path) -> Result<std::string> {
    std::string frame;
    VDB_RETURN_NOT_OK(options_.fs->Read(path, &frame));
    std::string body;
    VDB_RETURN_NOT_OK(
        storage::DecodeEnvelope(storage::kManifestEnvMagic, frame, &body));
    return body;
  };

  std::string current;
  Status current_status = options_.fs->Read(CurrentPath(), &current);
  if (current_status.ok()) {
    auto loaded = try_load(current);
    if (loaded.ok()) {
      // Resume sequence numbering after the committed manifest.
      const std::string prefix = ManifestPath() + "-";
      if (current.compare(0, prefix.size(), prefix) == 0) {
        const uint64_t seq = std::strtoull(
            current.c_str() + prefix.size(), nullptr, 10);
        uint64_t expected = next_manifest_seq_.load();
        while (seq + 1 > expected &&
               !next_manifest_seq_.compare_exchange_weak(expected, seq + 1)) {
        }
      }
      return loaded;
    }
  }

  auto listed = options_.fs->List(ManifestPath() + "-");
  if (listed.ok()) {
    std::vector<std::pair<uint64_t, std::string>> candidates;
    const size_t prefix_len = ManifestPath().size() + 1;
    for (const std::string& path : listed.value()) {
      candidates.emplace_back(
          std::strtoull(path.c_str() + prefix_len, nullptr, 10), path);
    }
    std::sort(candidates.rbegin(), candidates.rend());
    for (const auto& [seq, path] : candidates) {
      auto loaded = try_load(path);
      if (!loaded.ok()) continue;
      uint64_t expected = next_manifest_seq_.load();
      while (seq + 1 > expected &&
             !next_manifest_seq_.compare_exchange_weak(expected, seq + 1)) {
      }
      return loaded;
    }
  }

  std::string legacy;
  Status legacy_status = options_.fs->Read(ManifestPath(), &legacy);
  if (legacy_status.ok()) return legacy;
  if (!current_status.ok() && !current_status.IsNotFound()) {
    return current_status;  // e.g. transient storage failure, not absence.
  }
  return Status::NotFound("no committed manifest for " + schema_.name);
}

Status Collection::RecoverFromStorage() {
  // Recovery runs before Open() publishes the collection, but WAL replay
  // calls ApplyTombstoneLocked, which requires write_mu_ — and holding it
  // here also makes a concurrent write during a hypothetical re-open safe
  // instead of silently racy (found by the thread-safety annotations:
  // replay reached ApplyTombstoneLocked without the lock).
  MutexLock lock(&write_mu_);
  auto resolved = ResolveManifestBody();
  if (!resolved.ok()) return resolved.status();
  const std::string manifest = std::move(resolved).value();
  BinaryReader reader(manifest);
  uint32_t magic;
  if (!reader.GetU32(&magic) || magic != kManifestMagic) {
    return Status::Corruption("bad manifest magic");
  }
  std::string schema_blob;
  uint64_t next_segment, next_row, num_segments;
  if (!reader.GetString(&schema_blob) || !reader.GetU64(&next_segment) ||
      !reader.GetU64(&next_row) || !reader.GetU64(&num_segments)) {
    return Status::Corruption("truncated manifest");
  }
  auto schema = CollectionSchema::Deserialize(schema_blob);
  if (!schema.ok()) return schema.status();
  schema_ = std::move(schema).value();
  memtable_ =
      std::make_unique<storage::MemTable>(schema_.ToSegmentSchema());
  // Open() constructs with a bootstrap schema, so the store built in the
  // constructor points at the wrong prefix until the real name is known.
  segment_store_ =
      std::make_shared<storage::SegmentStore>(options_.fs, SegmentsPrefix());
  next_segment_id_.store(next_segment);
  next_row_id_.store(next_row);

  std::vector<SegmentId> segment_ids;
  for (uint64_t i = 0; i < num_segments; ++i) {
    uint64_t id;
    if (!reader.GetU64(&id)) return Status::Corruption("truncated manifest");
    segment_ids.push_back(id);
  }
  std::vector<RowId> tombstone_rows;
  std::vector<SegmentId> tombstone_marks;
  if (!reader.GetVector(&tombstone_rows) ||
      !reader.GetVector(&tombstone_marks) ||
      tombstone_rows.size() != tombstone_marks.size()) {
    return Status::Corruption("truncated manifest tombstones");
  }

  // Optional index-version extension (manifest v2). Pre-split manifests end
  // here: their segments carried inline indexes, which DeserializeData
  // restores directly from the v1 segment file.
  std::vector<std::vector<std::pair<uint32_t, uint64_t>>> index_entries(
      segment_ids.size());
  if (reader.Remaining() > 0) {
    uint64_t next_index_version = 0;
    if (!reader.GetU64(&next_index_version)) {
      return Status::Corruption("truncated manifest index extension");
    }
    next_index_version_.store(std::max<uint64_t>(next_index_version, 1));
    for (auto& entries : index_entries) {
      uint64_t count;
      if (!reader.GetU64(&count)) {
        return Status::Corruption("truncated manifest index extension");
      }
      for (uint64_t e = 0; e < count; ++e) {
        uint32_t field;
        uint64_t version;
        if (!reader.GetU32(&field) || !reader.GetU64(&version)) {
          return Status::Corruption("truncated manifest index extension");
        }
        entries.emplace_back(field, version);
      }
    }
  }

  std::vector<storage::SegmentPtr> segments;
  for (size_t i = 0; i < segment_ids.size(); ++i) {
    auto loaded = LoadSegment(segment_ids[i], index_entries[i]);
    if (!loaded.ok()) return loaded.status();
    segments.push_back(std::move(loaded).value());
  }
  snapshot_manager_.Commit([&](storage::Snapshot* snap) {
    snap->segments = segments;
    auto tombs = std::make_shared<storage::TombstoneMap>();
    for (size_t i = 0; i < tombstone_rows.size(); ++i) {
      (*tombs)[tombstone_rows[i]] = tombstone_marks[i];
    }
    snap->tombstones = std::move(tombs);
    // One full scan seeds the incremental live-row counter; every write
    // path from here on maintains it in O(1)-ish per operation.
    snap->live_rows = snap->CountLiveRowsSlow();
  });

  // Replay the WAL tail (operations after the last manifest persist).
  // Read-only opens stop at the committed manifest instead.
  if (!options_.replay_wal) return Status::OK();
  return wal_->Replay([this](const storage::WalRecord& record) -> Status {
    switch (record.type) {
      case storage::WalOpType::kInsert: {
        auto entity = Entity::Deserialize(record.payload);
        if (!entity.ok()) return entity.status();
        const Entity& e = entity.value();
        std::vector<const float*> fields;
        for (const auto& vec : e.vectors) fields.push_back(vec.data());
        uint64_t expected = next_row_id_.load();
        while (static_cast<uint64_t>(e.id) >= expected &&
               !next_row_id_.compare_exchange_weak(expected, e.id + 1)) {
        }
        return memtable_->Insert(e.id, fields, e.attributes);
      }
      case storage::WalOpType::kDelete: {
        BinaryReader payload(record.payload);
        RowId row_id;
        if (!payload.GetI64(&row_id)) {
          return Status::Corruption("bad delete payload");
        }
        // The lambda boundary hides RecoverFromStorage's MutexLock from
        // the analysis; re-assert the invariant instead of re-locking.
        write_mu_.AssertHeld();
        if (!memtable_->Delete(row_id)) ApplyTombstoneLocked(row_id);
        return Status::OK();
      }
      default:
        return Status::OK();
    }
  });
}

void Collection::WireSegmentTiers(const storage::SegmentPtr& segment) const {
  // Loaders capture the pool and store shared_ptrs by value: a SegmentPtr
  // that outlives this Collection (held by a drained snapshot or a test)
  // can still page its tiers in.
  const SegmentId id = segment->id();
  std::shared_ptr<storage::BufferPool> pool = buffer_pool_;
  storage::SegmentStorePtr store = segment_store_;
  segment->SetDataLoader([pool, store, id]() {
    return pool->FetchData(id, [store, id]() { return store->ReadData(id); });
  });
  segment->SetIndexLoader([pool, store, id](size_t field, uint64_t version) {
    return pool->FetchIndex(
        id, field, [store, id, field, version]() -> Result<storage::IndexHandle> {
          auto loaded = store->ReadIndex(id, field, version);
          if (!loaded.ok() && loaded.status().IsCorruption()) {
            // Quarantine the damaged artifact so the next out-of-band build
            // can publish a fresh version; the data file is untouched and
            // readers keep serving through the flat fallback meanwhile.
            store->QuarantineIndex(id, field, version).IgnoreError();
          }
          return loaded;
        });
  });
}

Status Collection::PersistSegment(const storage::SegmentPtr& segment) {
  // Data artifact only — indexes are separate versioned files written by
  // the out-of-band BuildIndexes pass (verify-after-write inside the store).
  VDB_RETURN_NOT_OK(segment_store_->WriteData(*segment));
  WireSegmentTiers(segment);
  auto data = segment->AcquireData();
  if (data.ok()) {
    buffer_pool_->InsertData(segment->id(), data.value());
    // Now that the artifact is durable and pool-resident, the pinned copy
    // can drop to a weak reference: cold segments page back in on demand.
    segment->MakeDataEvictable();
  }
  return Status::OK();
}

Result<storage::SegmentPtr> Collection::LoadSegment(
    SegmentId id,
    const std::vector<std::pair<uint32_t, uint64_t>>& index_entries) const {
  auto loaded = segment_store_->ReadSegment(id);
  if (!loaded.ok()) return loaded.status();
  storage::SegmentPtr segment = std::move(loaded).value();
  for (const auto& [field, version] : index_entries) {
    segment->RestoreIndexVersion(field, version);
  }
  WireSegmentTiers(segment);
  auto data = segment->AcquireData();
  if (data.ok()) {
    buffer_pool_->InsertData(id, data.value());
    segment->MakeDataEvictable();
  }
  return segment;
}

Status Collection::ValidateEntity(const Entity& entity) const {
  if (entity.vectors.size() != schema_.vector_fields.size()) {
    return Status::InvalidArgument("entity vector field count mismatch");
  }
  for (size_t f = 0; f < entity.vectors.size(); ++f) {
    if (entity.vectors[f].size() != schema_.vector_fields[f].dim) {
      return Status::InvalidArgument("entity vector dim mismatch in field " +
                                     schema_.vector_fields[f].name);
    }
  }
  if (entity.attributes.size() != schema_.attributes.size()) {
    return Status::InvalidArgument("entity attribute count mismatch");
  }
  return Status::OK();
}

RowId Collection::AllocateRowIds(size_t count) {
  return static_cast<RowId>(next_row_id_.fetch_add(count));
}

uint64_t Collection::next_row_id() const { return next_row_id_.load(); }

Status Collection::LogAndApplyInsert(const Entity& entity) {
  // Materialize to the log first (Sec 5.1), then apply to the MemTable.
  storage::WalRecord record;
  record.type = storage::WalOpType::kInsert;
  record.collection = schema_.name;
  entity.Serialize(&record.payload);
  VDB_RETURN_NOT_OK(wal_->Append(&record));

  std::vector<const float*> fields;
  fields.reserve(entity.vectors.size());
  for (const auto& vec : entity.vectors) fields.push_back(vec.data());
  return memtable_->Insert(entity.id, fields, entity.attributes);
}

Status Collection::Insert(const Entity& entity) {
  VDB_RETURN_NOT_OK(ValidateEntity(entity));
  MutexLock lock(&write_mu_);
  Entity to_insert = entity;
  if (to_insert.id == kInvalidRowId) {
    to_insert.id = AllocateRowIds(1);
  } else {
    uint64_t expected = next_row_id_.load();
    while (static_cast<uint64_t>(to_insert.id) >= expected &&
           !next_row_id_.compare_exchange_weak(expected, to_insert.id + 1)) {
    }
  }
  return LogAndApplyInsert(to_insert);
}

Status Collection::InsertBatch(const std::vector<Entity>& entities) {
  for (const Entity& entity : entities) {
    VDB_RETURN_NOT_OK(Insert(entity));
  }
  return Status::OK();
}

Status Collection::Delete(RowId row_id) {
  MutexLock lock(&write_mu_);
  storage::WalRecord record;
  record.type = storage::WalOpType::kDelete;
  record.collection = schema_.name;
  record.payload = EncodeDeletePayload(row_id);
  VDB_RETURN_NOT_OK(wal_->Append(&record));

  if (memtable_->Delete(row_id)) return Status::OK();  // Never flushed.
  ApplyTombstoneLocked(row_id);
  return Status::OK();
}

void Collection::ApplyTombstoneLocked(RowId row_id) {
  manifest_dirty_ = true;
  // Every physical copy currently on disk lives in a segment with id below
  // the watermark; a later re-insert flushes above it and stays visible.
  const SegmentId watermark = next_segment_id_.load();
  snapshot_manager_.Commit([&](storage::Snapshot* snap) {
    // Copies visible under the old map all fall below the new watermark,
    // so they leave the live set together (0 on a repeated delete).
    const size_t killed = snap->CountVisibleCopies(row_id);
    snap->live_rows -= std::min(snap->live_rows, killed);
    auto tombs = std::make_shared<storage::TombstoneMap>(*snap->tombstones);
    SegmentId& mark = (*tombs)[row_id];
    mark = std::max(mark, watermark);
    snap->tombstones = std::move(tombs);
  });
}

Status Collection::Update(const Entity& entity) {
  if (entity.id == kInvalidRowId) {
    return Status::InvalidArgument("update requires an explicit row id");
  }
  VDB_RETURN_NOT_OK(Delete(entity.id));
  return Insert(entity);
}

Status Collection::Flush() {
  MutexLock lock(&write_mu_);
  if (memtable_->num_rows() == 0 && !manifest_dirty_) return Status::OK();
  Timer flush_timer;
  const Status status = FlushLocked();
  obs::Storage().flush_seconds->Observe(flush_timer.ElapsedSeconds());
  return status;
}

Status Collection::FlushLocked() {
  storage::SegmentPtr segment;
  if (memtable_->num_rows() > 0) {
    const SegmentId segment_id = next_segment_id_.fetch_add(1);
    auto flushed = memtable_->BuildSegment(segment_id);
    if (!flushed.ok()) return flushed.status();
    segment = std::move(flushed).value();
  }
  if (segment != nullptr) {
    // No inline index build: flush writes the data artifact only. Large
    // segments get their indexes from the out-of-band BuildIndexes pass
    // (Sec 2.3 builds asynchronously anyway); until then they serve
    // correct results through the flat scan path.
    VDB_RETURN_NOT_OK(PersistSegment(segment));
    // Only now is it safe to drop the buffered rows: on a failed persist
    // they stay in the MemTable, still covered by the WAL. Dropping them
    // earlier would let a later successful flush Reset the WAL and silently
    // lose acknowledged writes.
    memtable_->Clear();
    snapshot_manager_.Commit([&](storage::Snapshot* snap) {
      snap->segments.push_back(segment);
      // A fresh segment's id is above every existing watermark, so all of
      // its rows are visible.
      snap->live_rows += segment->num_rows();
    });
    // The snapshot is now ahead of the committed manifest; if the persist
    // below fails, the next flush must not skip on an empty MemTable or
    // the segment stays unpublished until an unrelated write forces it out.
    manifest_dirty_ = true;
  }
  // Runs even with no segment to write: a dirty manifest (pending
  // tombstones or a previously unpublished segment) must still be
  // committed or acked operations stay invisible to readers.
  VDB_RETURN_NOT_OK(PersistManifest());
  // The WAL reset gates the dirty flag too: records surviving past a
  // manifest that already covers them would be re-applied on recovery,
  // duplicating rows.
  VDB_RETURN_NOT_OK(wal_->Reset());
  manifest_dirty_ = false;
  return Status::OK();
}

Status Collection::RunMergeOnce(size_t* merges_done) {
  MutexLock lock(&write_mu_);
  if (merges_done != nullptr) *merges_done = 0;
  const storage::SnapshotPtr snapshot = snapshot_manager_.Acquire();

  std::vector<storage::SegmentInfo> infos;
  infos.reserve(snapshot->segments.size());
  for (const auto& segment : snapshot->segments) {
    infos.push_back({segment->id(), segment->num_rows()});
  }
  const auto groups = PickMerges(infos, options_.merge_policy);
  if (groups.empty()) return Status::OK();
  Timer merge_timer;

  for (const storage::MergeGroup& group : groups) {
    std::vector<storage::SegmentPtr> sources;
    for (SegmentId id : group) {
      for (const auto& segment : snapshot->segments) {
        if (segment->id() == id) sources.push_back(segment);
      }
    }

    const SegmentId merged_id = next_segment_id_.fetch_add(1);
    storage::SegmentBuilder builder(merged_id, schema_.ToSegmentSchema());
    std::vector<RowId> applied_tombstones;
    for (const auto& source : sources) {
      // Hold the data handle for the whole copy loop — the source may be
      // cold (evicted) and this is its pin.
      auto source_data = source->AcquireData();
      if (!source_data.ok()) return source_data.status();
      const storage::SegmentDataPtr& payload = source_data.value();
      for (size_t pos = 0; pos < source->num_rows(); ++pos) {
        const RowId row_id = source->row_id_at(pos);
        if (snapshot->IsDeleted(row_id, source->id())) {
          // Obsoleted vectors are removed during merge (Sec 2.3).
          applied_tombstones.push_back(row_id);
          continue;
        }
        std::vector<const float*> fields;
        for (size_t f = 0; f < schema_.vector_fields.size(); ++f) {
          fields.push_back(payload->vector(f, pos));
        }
        std::vector<double> attrs;
        for (size_t a = 0; a < schema_.attributes.size(); ++a) {
          attrs.push_back(source->attribute(a).ValueAt(pos));
        }
        VDB_RETURN_NOT_OK(builder.AddRow(row_id, fields, attrs));
      }
    }
    auto built = builder.Finish();
    if (!built.ok()) return built.status();
    storage::SegmentPtr merged = std::move(built).value();
    // Merged segments start index-less too; the next out-of-band build
    // picks them up. Merge no longer pays the index-build latency inline.
    VDB_RETURN_NOT_OK(PersistSegment(merged));

    std::unordered_set<RowId> applied_set(applied_tombstones.begin(),
                                          applied_tombstones.end());
    snapshot_manager_.Commit([&](storage::Snapshot* snap) {
      auto& segs = snap->segments;
      // Live rows the source segments contribute under the current map —
      // the merged segment replaces exactly these.
      size_t source_live = 0;
      for (const auto& s : segs) {
        if (std::find(group.begin(), group.end(), s->id()) == group.end()) {
          continue;
        }
        for (size_t pos = 0; pos < s->num_rows(); ++pos) {
          if (!snap->IsDeleted(s->row_id_at(pos), s->id())) ++source_live;
        }
      }
      segs.erase(std::remove_if(segs.begin(), segs.end(),
                                [&](const storage::SegmentPtr& s) {
                                  return std::find(group.begin(), group.end(),
                                                   s->id()) != group.end();
                                }),
                 segs.end());
      segs.push_back(merged);
      size_t resurrected = 0;
      if (!applied_set.empty()) {
        auto tombs =
            std::make_shared<storage::TombstoneMap>(*snap->tombstones);
        for (RowId id : applied_set) {
          auto it = tombs->find(id);
          if (it == tombs->end()) continue;
          // Dropping the tombstone revives stale copies of the row that
          // still sit below its watermark in segments outside this merge.
          const SegmentId watermark = it->second;
          for (const auto& s : segs) {
            if (s->id() >= watermark) continue;
            const auto& ids = s->row_ids();
            const auto range = std::equal_range(ids.begin(), ids.end(), id);
            resurrected += static_cast<size_t>(range.second - range.first);
          }
          tombs->erase(it);
        }
        snap->tombstones = std::move(tombs);
      }
      snap->live_rows += merged->num_rows() + resurrected;
      snap->live_rows -= std::min(snap->live_rows, source_live);
    });
    if (merges_done != nullptr) ++(*merges_done);
  }
  // Note: manifest_dirty_ stays untouched here — it may also record a
  // pending WAL reset, which only Flush can retire.
  const Status status = PersistManifest();
  obs::Storage().merge_seconds->Observe(merge_timer.ElapsedSeconds());
  return status;
}

Status Collection::BuildIndexes(size_t* built) {
  if (built != nullptr) *built = 0;

  // Phase 1 — build, without the write lock. Readers and writers proceed
  // normally: we only read pinned snapshot data and write brand-new .idx
  // artifacts nobody references yet. The data file is never rewritten.
  struct PendingIndex {
    storage::SegmentPtr segment;
    size_t field = 0;
    uint64_t version = 0;
    storage::IndexHandle index;
  };
  std::vector<PendingIndex> pending;
  {
    const storage::SnapshotPtr snapshot = snapshot_manager_.Acquire();
    for (const auto& segment : snapshot->segments) {
      if (segment->num_rows() < options_.index_build_threshold_rows) continue;
      for (size_t f = 0; f < schema_.vector_fields.size(); ++f) {
        if (segment->HasIndex(f)) continue;
        auto data = segment->AcquireData();
        if (!data.ok()) return data.status();
        auto created = index::CreateIndex(
            schema_.default_index, schema_.vector_fields[f].dim,
            schema_.metric, schema_.index_params);
        if (!created.ok()) return created.status();
        index::IndexPtr idx = std::move(created).value();
        VDB_RETURN_NOT_OK(
            idx->Build(data.value()->vectors(f), segment->num_rows()));
        PendingIndex p;
        p.segment = segment;
        p.field = f;
        p.version = next_index_version_.fetch_add(1);
        p.index = storage::IndexHandle(std::move(idx));
        // Durable (and verified) before publish: a crash from here to the
        // manifest flip leaves an orphan artifact recovery never reads.
        VDB_RETURN_NOT_OK(segment_store_->WriteIndex(
            segment->id(), p.field, p.version, *p.index));
        pending.push_back(std::move(p));
      }
    }
  }
  if (pending.empty()) return Status::OK();

  // Phase 2 — publish, under the write lock: stamp the new versions into
  // the live segments and commit them through one manifest write. Segments
  // merged away while we were building get their orphan artifacts deleted.
  MutexLock lock(&write_mu_);
  const storage::SnapshotPtr current = snapshot_manager_.Acquire();
  size_t published = 0;
  for (PendingIndex& p : pending) {
    bool still_live = false;
    for (const auto& segment : current->segments) {
      if (segment.get() == p.segment.get()) still_live = true;
    }
    if (!still_live) {
      segment_store_->DeleteIndex(p.segment->id(), p.field, p.version)
          .IgnoreError();
      continue;
    }
    p.segment->PublishIndex(p.field, p.version, p.index);
    buffer_pool_->InsertIndex(p.segment->id(), p.field, p.index);
    ++published;
  }
  if (published > 0) {
    VDB_RETURN_NOT_OK(PersistManifest());
  }
  if (built != nullptr) *built = published;
  return Status::OK();
}

size_t Collection::CollectGarbage() {
  return snapshot_manager_.CollectGarbage();
}

size_t Collection::NumLiveRows() const {
  const storage::SnapshotPtr snapshot = snapshot_manager_.Acquire();
#ifndef NDEBUG
  // Debug builds cross-check the incremental counter against a full scan;
  // a mismatch means some write path forgot to maintain it.
  assert(snapshot->live_rows == snapshot->CountLiveRowsSlow());
#endif
  return snapshot->live_rows;
}

size_t Collection::NumSegments() const {
  return snapshot_manager_.Acquire()->segments.size();
}

Result<std::vector<HitList>> Collection::Search(
    const std::string& field, const float* queries, size_t nq,
    const QueryOptions& options, exec::QueryStats* stats) const {
  return SearchScoped(field, queries, nq, options, nullptr, stats);
}

Result<std::vector<HitList>> Collection::SearchScoped(
    const std::string& field, const float* queries, size_t nq,
    const QueryOptions& options, const std::function<bool(SegmentId)>& owns,
    exec::QueryStats* stats) const {
  const int f = schema_.FieldIndex(field);
  if (f < 0) return Status::NotFound("unknown vector field: " + field);
  VDB_RETURN_NOT_OK(exec::ValidateQueryOptions(options, nq));
  const storage::SnapshotPtr snapshot = snapshot_manager_.Acquire();

  exec::QueryContext ctx(options);
  if (owns) ctx.SetShardPredicate(owns);
  exec::VectorSearchPlan plan;
  plan.field = static_cast<size_t>(f);
  plan.dim = schema_.vector_fields[f].dim;
  plan.metric = schema_.metric;
  plan.queries = queries;
  plan.nq = nq;
  plan.k = options.k;
  exec::SegmentExecutor executor(query_pool_.get());
  auto result = [&] {
    obs::TraceSpan root(&ctx.trace(), "search");
    ctx.set_root_span(&root);
    return executor.SearchVectors(*snapshot, plan, &ctx);
  }();
  ctx.set_root_span(nullptr);
  FinishQuery(ctx, result.ok() ? Status::OK() : result.status(), "search");
  if (stats != nullptr) *stats = ctx.stats();
  return result;
}

Result<HitList> Collection::SearchFiltered(
    const std::string& field, const float* query, const std::string& attribute,
    const query::AttrRange& range, const QueryOptions& options,
    exec::QueryStats* stats) const {
  auto result =
      SearchFilteredBatch(field, query, 1, attribute, range, options, stats);
  if (!result.ok()) return result.status();
  return std::move(result.value()[0]);
}

Result<std::vector<HitList>> Collection::SearchFilteredBatch(
    const std::string& field, const float* queries, size_t nq,
    const std::string& attribute, const query::AttrRange& range,
    const QueryOptions& options, exec::QueryStats* stats) const {
  const int f = schema_.FieldIndex(field);
  if (f < 0) return Status::NotFound("unknown vector field: " + field);
  const int a = schema_.AttributeIdx(attribute);
  if (a < 0) return Status::NotFound("unknown attribute: " + attribute);
  VDB_RETURN_NOT_OK(exec::ValidateQueryOptions(options, nq));
  const storage::SnapshotPtr snapshot = snapshot_manager_.Acquire();

  exec::QueryContext ctx(options);
  exec::FilteredSearchPlan plan;
  plan.field = static_cast<size_t>(f);
  plan.dim = schema_.vector_fields[f].dim;
  plan.metric = schema_.metric;
  plan.queries = queries;
  plan.nq = nq;
  plan.attribute = static_cast<size_t>(a);
  plan.range = range;
  exec::SegmentExecutor executor(query_pool_.get());
  auto result = [&] {
    obs::TraceSpan root(&ctx.trace(), "filtered_search");
    ctx.set_root_span(&root);
    return executor.SearchFiltered(*snapshot, plan, &ctx);
  }();
  ctx.set_root_span(nullptr);
  FinishQuery(ctx, result.ok() ? Status::OK() : result.status(),
              "filtered_search");
  if (stats != nullptr) *stats = ctx.stats();
  return result;
}

Result<HitList> Collection::MultiVectorSearch(
    const std::vector<const float*>& query, const std::vector<float>& weights,
    const QueryOptions& options, exec::QueryStats* stats) const {
  const size_t mu = schema_.vector_fields.size();
  if (query.size() != mu) {
    return Status::InvalidArgument("one query vector per field required");
  }
  if (!weights.empty() && weights.size() != mu) {
    return Status::InvalidArgument("one weight per field required");
  }
  VDB_RETURN_NOT_OK(exec::ValidateQueryOptions(options, 1));
  auto weight = [&](size_t f) { return weights.empty() ? 1.0f : weights[f]; };
  const storage::SnapshotPtr snapshot = snapshot_manager_.Acquire();
  const bool keep_largest = MetricIsSimilarity(schema_.metric);

  // One context (and so one deadline and one cumulative stats block) spans
  // all iterative-merge rounds; the views resolve once and every per-field
  // round afterwards hits the snapshot's view cache.
  exec::QueryContext ctx(options);
  exec::SegmentExecutor executor(query_pool_.get());
  HitList best;
  Status round_status = Status::OK();
  {
  obs::TraceSpan root(&ctx.trace(), "multi_vector_search");
  ctx.set_root_span(&root);
  const std::vector<exec::SegmentViewPtr> views =
      exec::SegmentExecutor::ResolveViews(*snapshot, &ctx);
  std::vector<size_t> dims;
  dims.reserve(mu);
  for (size_t f = 0; f < mu; ++f) dims.push_back(schema_.vector_fields[f].dim);

  // Random-access exact aggregated score of one entity. A tier-load
  // failure aborts the whole query via round_status.
  auto exact_score = [&](RowId row_id, float* out) -> bool {
    auto scored = exec::SegmentExecutor::ScoreEntity(
        views, query, weights, dims, schema_.metric, row_id, out);
    if (!scored.ok()) {
      round_status = scored.status();
      return false;
    }
    return scored.value();
  };

  // Iterative merging (Algorithm 2) across segments: per-field top-k' with
  // adaptive doubling; the stop test compares the k-th exact aggregate with
  // the frontier bound of unseen entities.
  size_t k_prime = options.k;
  const size_t total_rows = snapshot->TotalRows();
  while (true) {
    std::vector<HitList> lists(mu);
    bool exhausted = true;
    for (size_t f = 0; f < mu; ++f) {
      exec::VectorSearchPlan plan;
      plan.field = f;
      plan.dim = dims[f];
      plan.metric = schema_.metric;
      plan.queries = query[f];
      plan.nq = 1;
      plan.k = k_prime;
      auto result = executor.SearchVectors(*snapshot, plan, &ctx);
      if (!result.ok()) round_status = result.status();
      if (!round_status.ok()) break;
      lists[f] = std::move(result.value()[0]);
      if (lists[f].size() >= k_prime) exhausted = false;
    }
    if (!round_status.ok()) break;

    // Frontier bound: the best aggregate any unseen entity could have.
    float bound = 0.0f;
    bool bound_valid = true;
    for (size_t f = 0; f < mu; ++f) {
      if (lists[f].empty()) {
        bound_valid = false;
        break;
      }
      bound += weight(f) * lists[f].back().score;
    }

    std::unordered_set<RowId> candidates;
    for (const auto& list : lists) {
      for (const SearchHit& hit : list) candidates.insert(hit.id);
    }
    ResultHeap heap = ResultHeap::ForMetric(options.k, schema_.metric);
    for (RowId id : candidates) {
      float score;
      if (exact_score(id, &score)) heap.Push(id, score);
      if (!round_status.ok()) break;
    }
    if (!round_status.ok()) break;
    best = heap.TakeSorted();

    const bool determined =
        best.size() >= options.k && bound_valid &&
        (keep_largest ? best[options.k - 1].score >= bound
                      : best[options.k - 1].score <= bound);
    // Footnote 5: Milvus caps k' at 16384 to bound data movement.
    constexpr size_t kPrimeCeiling = 16384;
    if (determined || exhausted || k_prime >= total_rows ||
        k_prime >= kPrimeCeiling) {
      break;
    }
    k_prime *= 2;
  }
  }  // close the multi_vector_search root span before the epilogue
  ctx.set_root_span(nullptr);
  FinishQuery(ctx, round_status, "multi_vector_search");
  if (stats != nullptr) *stats = ctx.stats();
  if (!round_status.ok()) return round_status;
  return best;
}

Result<Entity> Collection::Get(RowId row_id) const {
  const storage::SnapshotPtr snapshot = snapshot_manager_.Acquire();
  size_t pos = 0;
  const storage::Segment* segment = snapshot->FindLive(row_id, &pos);
  if (segment == nullptr) {
    return Status::NotFound("row not found (or not yet flushed)");
  }
  Entity entity;
  entity.id = row_id;
  auto data = segment->AcquireData();
  if (!data.ok()) return data.status();
  for (size_t f = 0; f < schema_.vector_fields.size(); ++f) {
    const size_t dim = schema_.vector_fields[f].dim;
    const float* vec = data.value()->vector(f, pos);
    entity.vectors.emplace_back(vec, vec + dim);
  }
  for (size_t a = 0; a < schema_.attributes.size(); ++a) {
    entity.attributes.push_back(segment->attribute(a).ValueAt(pos));
  }
  return entity;
}

}  // namespace db
}  // namespace vectordb
