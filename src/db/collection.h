#ifndef VECTORDB_DB_COLLECTION_H_
#define VECTORDB_DB_COLLECTION_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/threadpool.h"
#include "db/schema.h"
#include "exec/query_context.h"
#include "obs/metrics.h"
#include "query/filter_strategies.h"
#include "storage/buffer_pool.h"
#include "storage/filesystem.h"
#include "storage/memtable.h"
#include "storage/segment_store.h"
#include "storage/merge_policy.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace vectordb {
namespace db {

struct CollectionOptions {
  storage::FileSystemPtr fs;  ///< Required: durable storage backend.
  /// Object-name prefix for this collection's files.
  std::string data_prefix;
  /// MemTable rows that trigger a flush (the size leg of Sec 2.3's
  /// "threshold or once every second"; the time leg is the background tick).
  size_t memtable_flush_rows = 8192;
  /// Segments at or above this row count get indexes built (Sec 2.3 builds
  /// only for large segments, e.g. >1GB; we count rows).
  size_t index_build_threshold_rows = 4096;
  storage::MergePolicyOptions merge_policy;
  size_t buffer_pool_bytes = size_t{256} << 20;
  /// Worker threads for the per-segment query fan-out. 0 = auto (bounded
  /// hardware concurrency); 1 = fully sequential on the calling thread.
  /// Results are identical either way — only wall-clock changes.
  size_t query_threads = 0;
  /// Queries slower than this (seconds) log their span trace at WARN and
  /// count into vdb_exec_slow_queries_total. 0 = disabled.
  double slow_query_log_seconds = 0.0;
  /// Replay the WAL tail into the MemTable on Open (crash recovery). The
  /// writer needs this; read-only replicas must turn it off: the WAL is the
  /// writer's private redo log, and a reader replaying it would see acked
  /// but unpublished operations (especially deletes) ahead of every peer
  /// that refreshed at the last publish.
  bool replay_wal = true;
};

/// Query-time knobs shared by all collection search entry points — the
/// exec layer's options struct, so the SDK, REST handler, db layer, and
/// distributed scatter path all speak one type.
using QueryOptions = exec::QueryOptions;

/// A collection of entities: the LSM write path (WAL → MemTable → immutable
/// segments → tiered merges), snapshot-isolated reads, automatic index
/// builds for large segments, and the three query types of Sec 2.1.
///
/// Thread model: writes are serialized by an internal mutex; reads pin a
/// snapshot and never block writes (Sec 5.2).
class Collection {
 public:
  /// Create a brand-new collection (fails if files already exist).
  static Result<std::unique_ptr<Collection>> Create(
      const CollectionSchema& schema, const CollectionOptions& options);

  /// Re-open an existing collection: load the manifest, reload segment
  /// metadata, replay the WAL into the MemTable (crash recovery).
  static Result<std::unique_ptr<Collection>> Open(
      const std::string& name, const CollectionOptions& options);

  const CollectionSchema& schema() const { return schema_; }

  // ----- writes (durably logged before acknowledgement, Sec 5.1) -----

  /// Insert one entity. id == kInvalidRowId auto-assigns. Row ids are the
  /// caller's primary keys: re-inserting an id that already exists in a
  /// flushed segment creates a duplicate — use Update() to replace.
  Status Insert(const Entity& entity);
  Status InsertBatch(const std::vector<Entity>& entities);

  /// Delete by row id (out-of-place: a tombstone until merge, Sec 2.3).
  Status Delete(RowId row_id);

  /// Update = delete + insert (Sec 2.3).
  Status Update(const Entity& entity);

  /// Make all buffered rows durable and searchable: MemTable → segment,
  /// manifest persist, WAL truncate, new snapshot.
  Status Flush();

  /// One round of the tiered merge policy; physically drops tombstoned
  /// rows from merged segments. Reports how many merges ran.
  Status RunMergeOnce(size_t* merges_done = nullptr);

  /// Out-of-band index build (decoupled-storage design): for every
  /// index-less segment above the build threshold, build the default index
  /// and write it as a separate versioned artifact, then publish the new
  /// versions through one atomic manifest commit. The data file is never
  /// rewritten, and readers are never blocked — the build phase runs
  /// without the write lock. Reports how many indexes were published.
  Status BuildIndexes(size_t* built = nullptr);

  /// Drop unreferenced segment files (Sec 5.2's background GC step).
  size_t CollectGarbage();

  // ----- reads (snapshot isolated) -----

  /// Vector query (Sec 2.1): top-k per query over one vector field. All
  /// search entry points accept an optional `stats` out-param filled with
  /// the per-query execution counters (exec::QueryStats).
  Result<std::vector<HitList>> Search(const std::string& field,
                                      const float* queries, size_t nq,
                                      const QueryOptions& options,
                                      exec::QueryStats* stats = nullptr) const;

  /// Like Search, but restricted to segments for which `owns` returns true —
  /// the reader-node sharding hook of the distributed layer (Sec 5.3).
  Result<std::vector<HitList>> SearchScoped(
      const std::string& field, const float* queries, size_t nq,
      const QueryOptions& options, const std::function<bool(SegmentId)>& owns,
      exec::QueryStats* stats = nullptr) const;

  /// Attribute filtering (Sec 4.1): per-segment cost-based strategy.
  Result<HitList> SearchFiltered(const std::string& field, const float* query,
                                 const std::string& attribute,
                                 const query::AttrRange& range,
                                 const QueryOptions& options,
                                 exec::QueryStats* stats = nullptr) const;

  /// Batched attribute filtering: nq query vectors sharing one filter run
  /// through a single segment fan-out — candidate collection, strategy
  /// choice, and the allow-bitmap are computed once per segment for the
  /// whole batch (the serving tier's coalesced path). Per-query results
  /// are bitwise identical to nq separate SearchFiltered calls.
  Result<std::vector<HitList>> SearchFilteredBatch(
      const std::string& field, const float* queries, size_t nq,
      const std::string& attribute, const query::AttrRange& range,
      const QueryOptions& options, exec::QueryStats* stats = nullptr) const;

  /// Multi-vector query (Sec 4.2): iterative merging across segments with
  /// weighted-sum aggregation (weights empty = all 1).
  Result<HitList> MultiVectorSearch(const std::vector<const float*>& query,
                                    const std::vector<float>& weights,
                                    const QueryOptions& options,
                                    exec::QueryStats* stats = nullptr) const;

  /// Point lookup over flushed data.
  Result<Entity> Get(RowId row_id) const;

  // ----- introspection -----

  size_t pending_rows() const { return memtable_->num_rows(); }
  size_t NumLiveRows() const;
  size_t NumSegments() const;
  storage::SnapshotManager& snapshots() { return snapshot_manager_; }
  const storage::BufferPool& buffer_pool() const { return *buffer_pool_; }
  storage::BufferPool& mutable_buffer_pool() { return *buffer_pool_; }
  uint64_t next_row_id() const;

  /// Reserve `count` consecutive row ids (auto-id allocation).
  RowId AllocateRowIds(size_t count);

 private:
  Collection(CollectionSchema schema, const CollectionOptions& options);

  Status ValidateEntity(const Entity& entity) const;
  Status LogAndApplyInsert(const Entity& entity);
  Status FlushLocked() VDB_REQUIRES(write_mu_);

  /// One-stop query epilogue: fold the context into the process-wide exec
  /// metrics and this collection's labeled series, and emit the slow-query
  /// log (with the span trace) when the threshold is exceeded.
  void FinishQuery(const exec::QueryContext& ctx, const Status& status,
                   const char* op) const;

  std::string SegmentsPrefix() const;
  std::string ManifestPath() const;
  std::string ManifestPathFor(uint64_t seq) const;
  std::string CurrentPath() const;
  std::string WalPath() const;

  /// Install the demand-paging loaders on a segment: data through the
  /// buffer pool + segment store, indexes at their published versions.
  void WireSegmentTiers(const storage::SegmentPtr& segment) const;

  /// Write the data artifact, wire the tiers, seed the pool, and make the
  /// fresh segment's data evictable.
  Status PersistSegment(const storage::SegmentPtr& segment);
  Result<storage::SegmentPtr> LoadSegment(
      SegmentId id,
      const std::vector<std::pair<uint32_t, uint64_t>>& index_entries) const;
  Status PersistManifest();
  Status RecoverFromStorage();
  /// Locate and CRC-verify the newest committed manifest: CURRENT pointer
  /// first, then a directory scan, then the legacy single-file layout.
  /// Returns the decoded manifest body and refreshes next_manifest_seq_.
  Result<std::string> ResolveManifestBody();

  /// Record a tombstone for `row_id` at the current watermark and keep the
  /// snapshot's live-row counter in sync.
  void ApplyTombstoneLocked(RowId row_id) VDB_REQUIRES(write_mu_);

  CollectionSchema schema_;
  CollectionOptions options_;
  std::unique_ptr<storage::WriteAheadLog> wal_;
  std::unique_ptr<storage::MemTable> memtable_;
  storage::SnapshotManager snapshot_manager_;
  /// Shared (not direct members) so segment tier loaders can capture them
  /// by value and stay valid for the life of any outstanding SegmentPtr.
  std::shared_ptr<storage::BufferPool> buffer_pool_;
  storage::SegmentStorePtr segment_store_;
  /// Workers for the per-segment query fan-out; nullptr = sequential.
  std::unique_ptr<ThreadPool> query_pool_;

  /// Serializes the write path (Insert/Delete/Flush/merge/recovery). The
  /// guarded state lives behind set-once pointers (wal_, memtable_) and the
  /// snapshot manager, which have their own internal locking — write_mu_
  /// provides the op-level ordering on top.
  /// Per-collection metric series ({collection="<name>"}), owned by the
  /// global registry; pointers are process-lifetime stable.
  obs::Counter* queries_total_;
  obs::Gauge* query_seconds_total_;
  obs::Counter* slow_queries_total_;

  mutable Mutex write_mu_{VDB_LOCK_RANK(kCollectionWrite)};
  /// True when durable/published state lags the in-memory snapshot: a
  /// tombstone applied since the last manifest persist, a flushed segment
  /// whose manifest write failed, or a WAL reset that has not landed.
  /// Flush must run even with an empty MemTable while this is set —
  /// otherwise acked operations stay invisible to readers (or WAL records
  /// already covered by the manifest get replayed twice) until some
  /// unrelated insert forces the next flush through.
  bool manifest_dirty_ VDB_GUARDED_BY(write_mu_) = false;
  std::atomic<uint64_t> next_segment_id_{1};
  std::atomic<uint64_t> next_row_id_{0};
  std::atomic<uint64_t> next_manifest_seq_{1};
  /// Monotonic stamp for index artifacts; every published index file gets
  /// a fresh version so rebuilds never overwrite a file a reader may hold.
  std::atomic<uint64_t> next_index_version_{1};
};

}  // namespace db
}  // namespace vectordb

#endif  // VECTORDB_DB_COLLECTION_H_
