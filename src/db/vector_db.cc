#include "db/vector_db.h"

#include <chrono>

#include "common/logger.h"

namespace vectordb {
namespace db {

VectorDb::VectorDb(DbOptions options) : options_(std::move(options)) {
  {
    MutexLock lock(&tenant_mu_);
    default_tenant_quota_ = options_.default_tenant_quota;
    tenant_quotas_ = options_.tenant_quotas;
  }
  running_.store(true);
  worker_ = std::make_unique<ThreadPool>(1);
  worker_->Submit([this] { WorkerLoop(); });
}

VectorDb::~VectorDb() {
  {
    MutexLock lock(&queue_mu_);
    running_.store(false);
  }
  queue_cv_.SignalAll();
  worker_.reset();  // Joins the pool worker once WorkerLoop returns.
}

CollectionOptions VectorDb::MakeCollectionOptions() const {
  CollectionOptions copts;
  copts.fs = options_.fs;
  copts.data_prefix = options_.data_prefix;
  copts.memtable_flush_rows = options_.memtable_flush_rows;
  copts.index_build_threshold_rows = options_.index_build_threshold_rows;
  copts.merge_policy = options_.merge_policy;
  copts.buffer_pool_bytes = options_.buffer_pool_bytes;
  copts.query_threads = options_.query_threads;
  copts.slow_query_log_seconds = options_.slow_query_log_seconds;
  return copts;
}

Result<Collection*> VectorDb::CreateCollection(
    const CollectionSchema& schema) {
  auto created = Collection::Create(schema, MakeCollectionOptions());
  if (!created.ok()) return created.status();
  MutexLock lock(&collections_mu_);
  auto [it, inserted] =
      collections_.emplace(schema.name, std::move(created).value());
  if (!inserted) return Status::AlreadyExists(schema.name);
  return it->second.get();
}

Result<Collection*> VectorDb::OpenCollection(const std::string& name) {
  {
    MutexLock lock(&collections_mu_);
    auto it = collections_.find(name);
    if (it != collections_.end()) return it->second.get();
  }
  auto opened = Collection::Open(name, MakeCollectionOptions());
  if (!opened.ok()) return opened.status();
  MutexLock lock(&collections_mu_);
  auto [it, inserted] = collections_.emplace(name, std::move(opened).value());
  return it->second.get();
}

Collection* VectorDb::GetCollection(const std::string& name) {
  MutexLock lock(&collections_mu_);
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

Status VectorDb::DropCollection(const std::string& name) {
  bool known;
  {
    MutexLock lock(&collections_mu_);
    known = collections_.erase(name) > 0;
  }
  // Remove every object under the collection prefix. A collection written
  // by a previous process is droppable without opening it first: the
  // on-disk objects are the source of truth, not this process's map.
  auto listed = options_.fs->List(options_.data_prefix + name + "/");
  if (!listed.ok()) return listed.status();
  for (const std::string& path : listed.value()) {
    // Best-effort cleanup: a leftover object is harmless and will be
    // overwritten if the collection name is reused.
    options_.fs->Delete(path).IgnoreError();
  }
  if (!known && listed.value().empty()) {
    return Status::NotFound("unknown collection: " + name);
  }
  return Status::OK();
}

std::vector<std::string> VectorDb::ListCollections() const {
  MutexLock lock(&collections_mu_);
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, _] : collections_) names.push_back(name);
  return names;
}

TenantQuota VectorDb::TenantQuotaFor(const std::string& tenant) const {
  MutexLock lock(&tenant_mu_);
  auto it = tenant_quotas_.find(tenant);
  return it == tenant_quotas_.end() ? default_tenant_quota_ : it->second;
}

void VectorDb::SetTenantQuota(const std::string& tenant,
                              const TenantQuota& quota) {
  MutexLock lock(&tenant_mu_);
  tenant_quotas_[tenant] = quota;
}

Status VectorDb::InsertAsync(const std::string& collection, Entity entity) {
  if (GetCollection(collection) == nullptr) {
    return Status::NotFound("unknown collection: " + collection);
  }
  {
    MutexLock lock(&queue_mu_);
    PendingOp op;
    op.kind = PendingOp::Kind::kInsert;
    op.collection = collection;
    op.entity = std::move(entity);
    queue_.push_back(std::move(op));
  }
  queue_cv_.Signal();
  return Status::OK();
}

Status VectorDb::DeleteAsync(const std::string& collection, RowId row_id) {
  if (GetCollection(collection) == nullptr) {
    return Status::NotFound("unknown collection: " + collection);
  }
  {
    MutexLock lock(&queue_mu_);
    PendingOp op;
    op.kind = PendingOp::Kind::kDelete;
    op.collection = collection;
    op.row_id = row_id;
    queue_.push_back(std::move(op));
  }
  queue_cv_.Signal();
  return Status::OK();
}

Status VectorDb::ApplyOp(const PendingOp& op) {
  Collection* collection = GetCollection(op.collection);
  if (collection == nullptr) return Status::NotFound(op.collection);
  switch (op.kind) {
    case PendingOp::Kind::kInsert:
      return collection->Insert(op.entity);
    case PendingOp::Kind::kDelete:
      return collection->Delete(op.row_id);
  }
  return Status::OK();
}

void VectorDb::WorkerLoop() {
  auto last_maintenance = std::chrono::steady_clock::now();
  while (true) {
    PendingOp op;
    bool have_op = false;
    {
      MutexLock lock(&queue_mu_);
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(options_.background_interval_ms);
      while (queue_.empty() && running_.load()) {
        if (!queue_cv_.WaitUntil(deadline)) break;  // Timed out: tick.
      }
      if (!running_.load() && queue_.empty()) return;
      if (!queue_.empty()) {
        op = std::move(queue_.front());
        queue_.pop_front();
        have_op = true;
        queue_busy_ = true;
      }
    }
    if (have_op) {
      const Status status = ApplyOp(op);
      if (!status.ok()) {
        VDB_WARN << "async op failed: " << status.ToString();
      }
      MutexLock lock(&queue_mu_);
      queue_busy_ = false;
      if (queue_.empty()) drained_cv_.SignalAll();
      continue;  // Drain writes before doing maintenance.
    }
    if (background_enabled_.load()) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_maintenance >=
          std::chrono::milliseconds(options_.background_interval_ms)) {
        last_maintenance = now;
        const Status status = RunMaintenancePass();
        if (!status.ok()) {
          VDB_WARN << "maintenance failed: " << status.ToString();
        }
      }
    }
  }
}

void VectorDb::DrainQueue() {
  MutexLock lock(&queue_mu_);
  while (!queue_.empty() || queue_busy_) drained_cv_.Wait();
}

Status VectorDb::Flush(const std::string& collection) {
  Collection* c = GetCollection(collection);
  if (c == nullptr) return Status::NotFound(collection);
  DrainQueue();
  return c->Flush();
}

Status VectorDb::FlushAll() {
  DrainQueue();
  std::vector<Collection*> all;
  {
    MutexLock lock(&collections_mu_);
    for (auto& [_, c] : collections_) all.push_back(c.get());
  }
  for (Collection* c : all) VDB_RETURN_NOT_OK(c->Flush());
  return Status::OK();
}

size_t VectorDb::QueueDepth() const {
  MutexLock lock(&queue_mu_);
  return queue_.size() + (queue_busy_ ? 1 : 0);
}

void VectorDb::StartBackground() { background_enabled_.store(true); }
void VectorDb::StopBackground() { background_enabled_.store(false); }

Status VectorDb::RunMaintenancePass() {
  std::vector<Collection*> all;
  {
    MutexLock lock(&collections_mu_);
    for (auto& [_, c] : collections_) all.push_back(c.get());
  }
  for (Collection* c : all) {
    if (c->pending_rows() >= options_.memtable_flush_rows ||
        c->pending_rows() > 0) {
      // The "once every second" flush leg (Sec 2.3): the tick flushes
      // whatever accumulated, not only full MemTables.
      VDB_RETURN_NOT_OK(c->Flush());
    }
    VDB_RETURN_NOT_OK(c->RunMergeOnce());
    VDB_RETURN_NOT_OK(c->BuildIndexes());
    c->CollectGarbage();
  }
  return Status::OK();
}

}  // namespace db
}  // namespace vectordb
