#ifndef VECTORDB_DB_SCHEMA_H_
#define VECTORDB_DB_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "index/index.h"
#include "storage/segment.h"

namespace vectordb {
namespace db {

/// One named vector field of an entity.
struct VectorFieldSchema {
  std::string name;
  size_t dim = 0;
};

/// Schema of a collection: each *entity* (Sec 2.1) carries one or more
/// vectors and optionally some numeric attributes.
struct CollectionSchema {
  std::string name;
  std::vector<VectorFieldSchema> vector_fields;
  std::vector<std::string> attributes;
  MetricType metric = MetricType::kL2;
  /// Index built automatically for large segments.
  index::IndexType default_index = index::IndexType::kIvfFlat;
  index::IndexBuildParams index_params;

  Status Validate() const;
  storage::SegmentSchema ToSegmentSchema() const;

  /// Index of the named vector field / attribute, or -1.
  int FieldIndex(const std::string& field_name) const;
  int AttributeIdx(const std::string& attribute_name) const;

  void Serialize(std::string* out) const;
  static Result<CollectionSchema> Deserialize(const std::string& in);
};

/// One entity for insertion.
struct Entity {
  RowId id = kInvalidRowId;
  /// vectors[f] has schema.vector_fields[f].dim floats.
  std::vector<std::vector<float>> vectors;
  std::vector<double> attributes;

  void Serialize(std::string* out) const;
  static Result<Entity> Deserialize(const std::string& in);
};

}  // namespace db
}  // namespace vectordb

#endif  // VECTORDB_DB_SCHEMA_H_
