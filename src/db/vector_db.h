#ifndef VECTORDB_DB_VECTOR_DB_H_
#define VECTORDB_DB_VECTOR_DB_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/threadpool.h"
#include "db/collection.h"

namespace vectordb {
namespace db {

struct DbOptions {
  storage::FileSystemPtr fs;  ///< Shared by every collection.
  /// Object-name prefix for all collections of this instance.
  std::string data_prefix = "db/";
  size_t memtable_flush_rows = 8192;
  size_t index_build_threshold_rows = 4096;
  storage::MergePolicyOptions merge_policy;
  size_t buffer_pool_bytes = size_t{256} << 20;
  /// Per-collection query fan-out workers (see CollectionOptions).
  size_t query_threads = 0;
  /// Slow-query log threshold in seconds (see CollectionOptions); 0 = off.
  double slow_query_log_seconds = 0.0;
  /// Background maintenance tick — the "once every second" flush leg of
  /// Sec 2.3 plus merging, index building, and snapshot GC.
  size_t background_interval_ms = 1000;
};

/// The embeddable database facade: collection lifecycle, the asynchronous
/// write path of Sec 5.1 (operations are materialized and acknowledged,
/// then consumed by a background thread; `Flush` blocks until the pending
/// operations are fully processed), and background LSM maintenance.
class VectorDb {
 public:
  explicit VectorDb(DbOptions options);
  ~VectorDb();

  VectorDb(const VectorDb&) = delete;
  VectorDb& operator=(const VectorDb&) = delete;

  // ----- collection lifecycle -----

  Result<Collection*> CreateCollection(const CollectionSchema& schema);
  Result<Collection*> OpenCollection(const std::string& name);
  /// Returns nullptr when unknown.
  Collection* GetCollection(const std::string& name);
  Status DropCollection(const std::string& name);
  std::vector<std::string> ListCollections() const;

  // ----- asynchronous write path (Sec 5.1) -----

  /// Enqueue an insert; acknowledged once queued (callers may not see the
  /// row until the background thread applies it — use Flush for barriers).
  Status InsertAsync(const std::string& collection, Entity entity);
  Status DeleteAsync(const std::string& collection, RowId row_id);

  /// Drain the async queue, then flush the collection (Sec 5.1's flush()).
  Status Flush(const std::string& collection);
  Status FlushAll();

  /// Pending async operations (for tests).
  size_t QueueDepth() const;

  // ----- background maintenance -----

  void StartBackground();
  void StopBackground();
  /// One synchronous maintenance pass (flush-by-size, merge, index, GC) —
  /// what the background thread runs each tick.
  Status RunMaintenancePass();

 private:
  struct PendingOp {
    enum class Kind { kInsert, kDelete } kind = Kind::kInsert;
    std::string collection;
    Entity entity;
    RowId row_id = kInvalidRowId;
  };

  CollectionOptions MakeCollectionOptions() const;
  void WorkerLoop();
  Status ApplyOp(const PendingOp& op);
  void DrainQueue();

  DbOptions options_;

  mutable Mutex collections_mu_{VDB_LOCK_RANK(kVectorDbCollections)};
  std::map<std::string, std::unique_ptr<Collection>> collections_
      VDB_GUARDED_BY(collections_mu_);

  mutable Mutex queue_mu_{VDB_LOCK_RANK(kVectorDbQueue)};
  CondVar queue_cv_{&queue_mu_};    ///< Signals new work.
  CondVar drained_cv_{&queue_mu_};  ///< Signals an empty queue.
  std::deque<PendingOp> queue_ VDB_GUARDED_BY(queue_mu_);
  bool queue_busy_ VDB_GUARDED_BY(queue_mu_) = false;

  /// Single-thread pool hosting WorkerLoop(): the loop occupies the one
  /// worker for the VectorDb's lifetime, and resetting the pool in the
  /// destructor joins it. Keeps thread construction inside ThreadPool (the
  /// vdb_lint `raw-thread` rule) so the worker shows up in pool stats.
  std::unique_ptr<ThreadPool> worker_;
  std::atomic<bool> running_{false};
  std::atomic<bool> background_enabled_{false};
};

}  // namespace db
}  // namespace vectordb

#endif  // VECTORDB_DB_VECTOR_DB_H_
