#ifndef VECTORDB_DB_VECTOR_DB_H_
#define VECTORDB_DB_VECTOR_DB_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/threadpool.h"
#include "db/collection.h"

namespace vectordb {
namespace db {

/// Per-tenant admission quotas, consumed by the serving tier's scheduler
/// (src/serve/). They live in the db layer so deployments configure tenants
/// next to the rest of the database options and the serving tier stays a
/// pure consumer. Zero values mean "unlimited" / "tier default".
struct TenantQuota {
  /// Sustained admission rate (queries/second, token-bucket refill).
  /// 0 = no rate limit for this tenant.
  double rate_qps = 0.0;
  /// Token-bucket capacity (how much burst above the sustained rate is
  /// admitted). 0 = max(1, rate_qps).
  double burst = 0.0;
  /// Queries this tenant may have queued (admitted, not yet executing).
  /// 0 = the serving tier's default per-tenant cap.
  size_t max_queued = 0;
};

struct DbOptions {
  storage::FileSystemPtr fs;  ///< Shared by every collection.
  /// Object-name prefix for all collections of this instance.
  std::string data_prefix = "db/";
  size_t memtable_flush_rows = 8192;
  size_t index_build_threshold_rows = 4096;
  storage::MergePolicyOptions merge_policy;
  size_t buffer_pool_bytes = size_t{256} << 20;
  /// Per-collection query fan-out workers (see CollectionOptions).
  size_t query_threads = 0;
  /// Slow-query log threshold in seconds (see CollectionOptions); 0 = off.
  double slow_query_log_seconds = 0.0;
  /// Background maintenance tick — the "once every second" flush leg of
  /// Sec 2.3 plus merging, index building, and snapshot GC.
  size_t background_interval_ms = 1000;
  /// Admission quota applied to tenants without an explicit entry in
  /// `tenant_quotas` (defaults = unlimited rate, tier-default queue cap).
  TenantQuota default_tenant_quota;
  /// Per-tenant admission quotas, keyed by tenant name.
  std::map<std::string, TenantQuota> tenant_quotas;
};

/// The embeddable database facade: collection lifecycle, the asynchronous
/// write path of Sec 5.1 (operations are materialized and acknowledged,
/// then consumed by a background thread; `Flush` blocks until the pending
/// operations are fully processed), and background LSM maintenance.
class VectorDb {
 public:
  explicit VectorDb(DbOptions options);
  ~VectorDb();

  VectorDb(const VectorDb&) = delete;
  VectorDb& operator=(const VectorDb&) = delete;

  // ----- collection lifecycle -----

  Result<Collection*> CreateCollection(const CollectionSchema& schema);
  Result<Collection*> OpenCollection(const std::string& name);
  /// Returns nullptr when unknown.
  Collection* GetCollection(const std::string& name);
  Status DropCollection(const std::string& name);
  std::vector<std::string> ListCollections() const;

  // ----- tenant quotas (consumed by the serving tier) -----

  /// The admission quota for `tenant`: the configured entry when one
  /// exists, the default quota otherwise.
  TenantQuota TenantQuotaFor(const std::string& tenant) const
      VDB_EXCLUDES(tenant_mu_);

  /// Install or replace one tenant's quota at runtime (an admission-control
  /// knob, so it is hot-swappable without reopening the database).
  void SetTenantQuota(const std::string& tenant, const TenantQuota& quota)
      VDB_EXCLUDES(tenant_mu_);

  // ----- asynchronous write path (Sec 5.1) -----

  /// Enqueue an insert; acknowledged once queued (callers may not see the
  /// row until the background thread applies it — use Flush for barriers).
  Status InsertAsync(const std::string& collection, Entity entity);
  Status DeleteAsync(const std::string& collection, RowId row_id);

  /// Drain the async queue, then flush the collection (Sec 5.1's flush()).
  Status Flush(const std::string& collection);
  Status FlushAll();

  /// Pending async operations (for tests).
  size_t QueueDepth() const;

  // ----- background maintenance -----

  void StartBackground();
  void StopBackground();
  /// One synchronous maintenance pass (flush-by-size, merge, index, GC) —
  /// what the background thread runs each tick.
  Status RunMaintenancePass();

 private:
  struct PendingOp {
    enum class Kind { kInsert, kDelete } kind = Kind::kInsert;
    std::string collection;
    Entity entity;
    RowId row_id = kInvalidRowId;
  };

  CollectionOptions MakeCollectionOptions() const;
  void WorkerLoop();
  Status ApplyOp(const PendingOp& op);
  void DrainQueue();

  DbOptions options_;

  mutable Mutex collections_mu_{VDB_LOCK_RANK(kVectorDbCollections)};
  std::map<std::string, std::unique_ptr<Collection>> collections_
      VDB_GUARDED_BY(collections_mu_);

  /// Guards the runtime tenant-quota table (reads are per-admission, writes
  /// are rare config changes).
  mutable Mutex tenant_mu_{VDB_LOCK_RANK(kVectorDbTenants)};
  std::map<std::string, TenantQuota> tenant_quotas_ VDB_GUARDED_BY(tenant_mu_);
  TenantQuota default_tenant_quota_ VDB_GUARDED_BY(tenant_mu_);

  mutable Mutex queue_mu_{VDB_LOCK_RANK(kVectorDbQueue)};
  CondVar queue_cv_{&queue_mu_};    ///< Signals new work.
  CondVar drained_cv_{&queue_mu_};  ///< Signals an empty queue.
  std::deque<PendingOp> queue_ VDB_GUARDED_BY(queue_mu_);
  bool queue_busy_ VDB_GUARDED_BY(queue_mu_) = false;

  /// Single-thread pool hosting WorkerLoop(): the loop occupies the one
  /// worker for the VectorDb's lifetime, and resetting the pool in the
  /// destructor joins it. Keeps thread construction inside ThreadPool (the
  /// vdb_lint `raw-thread` rule) so the worker shows up in pool stats.
  std::unique_ptr<ThreadPool> worker_;
  std::atomic<bool> running_{false};
  std::atomic<bool> background_enabled_{false};
};

}  // namespace db
}  // namespace vectordb

#endif  // VECTORDB_DB_VECTOR_DB_H_
