#include "db/schema.h"

#include <unordered_set>

#include "common/binary_io.h"

namespace vectordb {
namespace db {

Status CollectionSchema::Validate() const {
  if (name.empty()) return Status::InvalidArgument("collection name empty");
  if (vector_fields.empty()) {
    return Status::InvalidArgument("at least one vector field required");
  }
  std::unordered_set<std::string> names;
  for (const auto& field : vector_fields) {
    if (field.dim == 0) {
      return Status::InvalidArgument("vector field dim must be > 0: " +
                                     field.name);
    }
    if (!names.insert(field.name).second) {
      return Status::InvalidArgument("duplicate field name: " + field.name);
    }
  }
  for (const auto& attr : attributes) {
    if (!names.insert(attr).second) {
      return Status::InvalidArgument("duplicate attribute name: " + attr);
    }
  }
  if (MetricIsBinary(metric)) {
    return Status::NotSupported(
        "collections store float vectors; use BinaryFlatIndex directly for "
        "binary data");
  }
  return Status::OK();
}

storage::SegmentSchema CollectionSchema::ToSegmentSchema() const {
  storage::SegmentSchema schema;
  for (const auto& field : vector_fields) {
    schema.vector_dims.push_back(field.dim);
  }
  schema.attribute_names = attributes;
  return schema;
}

int CollectionSchema::FieldIndex(const std::string& field_name) const {
  for (size_t i = 0; i < vector_fields.size(); ++i) {
    if (vector_fields[i].name == field_name) return static_cast<int>(i);
  }
  return -1;
}

int CollectionSchema::AttributeIdx(const std::string& attribute_name) const {
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i] == attribute_name) return static_cast<int>(i);
  }
  return -1;
}

void CollectionSchema::Serialize(std::string* out) const {
  BinaryWriter writer(out);
  writer.PutString(name);
  writer.PutU64(vector_fields.size());
  for (const auto& field : vector_fields) {
    writer.PutString(field.name);
    writer.PutU64(field.dim);
  }
  writer.PutU64(attributes.size());
  for (const auto& attr : attributes) writer.PutString(attr);
  writer.PutU32(static_cast<uint32_t>(metric));
  writer.PutU32(static_cast<uint32_t>(default_index));
  writer.PutU64(index_params.nlist);
  writer.PutU64(index_params.pq_m);
  writer.PutU64(index_params.hnsw_m);
  writer.PutU64(index_params.seed);
}

Result<CollectionSchema> CollectionSchema::Deserialize(const std::string& in) {
  BinaryReader reader(in);
  CollectionSchema schema;
  uint64_t num_fields, num_attrs;
  if (!reader.GetString(&schema.name) || !reader.GetU64(&num_fields)) {
    return Status::Corruption("truncated schema");
  }
  schema.vector_fields.resize(num_fields);
  for (auto& field : schema.vector_fields) {
    uint64_t dim;
    if (!reader.GetString(&field.name) || !reader.GetU64(&dim)) {
      return Status::Corruption("truncated schema field");
    }
    field.dim = dim;
  }
  if (!reader.GetU64(&num_attrs)) return Status::Corruption("truncated");
  schema.attributes.resize(num_attrs);
  for (auto& attr : schema.attributes) {
    if (!reader.GetString(&attr)) return Status::Corruption("truncated");
  }
  uint32_t metric, default_index;
  uint64_t nlist, pq_m, hnsw_m, seed;
  if (!reader.GetU32(&metric) || !reader.GetU32(&default_index) ||
      !reader.GetU64(&nlist) || !reader.GetU64(&pq_m) ||
      !reader.GetU64(&hnsw_m) || !reader.GetU64(&seed)) {
    return Status::Corruption("truncated schema tail");
  }
  schema.metric = static_cast<MetricType>(metric);
  schema.default_index = static_cast<index::IndexType>(default_index);
  schema.index_params.nlist = nlist;
  schema.index_params.pq_m = pq_m;
  schema.index_params.hnsw_m = hnsw_m;
  schema.index_params.seed = seed;
  return schema;
}

void Entity::Serialize(std::string* out) const {
  BinaryWriter writer(out);
  writer.PutI64(id);
  writer.PutU64(vectors.size());
  for (const auto& vec : vectors) writer.PutVector(vec);
  writer.PutVector(attributes);
}

Result<Entity> Entity::Deserialize(const std::string& in) {
  BinaryReader reader(in);
  Entity entity;
  uint64_t num_fields;
  if (!reader.GetI64(&entity.id) || !reader.GetU64(&num_fields)) {
    return Status::Corruption("truncated entity");
  }
  entity.vectors.resize(num_fields);
  for (auto& vec : entity.vectors) {
    if (!reader.GetVector(&vec)) return Status::Corruption("truncated entity");
  }
  if (!reader.GetVector(&entity.attributes)) {
    return Status::Corruption("truncated entity attributes");
  }
  return entity;
}

}  // namespace db
}  // namespace vectordb
