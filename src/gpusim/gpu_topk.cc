#include "gpusim/gpu_topk.h"

#include <algorithm>
#include <unordered_set>

#include "common/result_heap.h"
#include "simd/distances.h"

namespace vectordb {
namespace gpusim {

Status GpuTopK(GpuDevice* device, const float* data, size_t n, size_t dim,
               const float* query, size_t k, MetricType metric,
               HitList* out) {
  if (k > kMaxSupportedK) {
    return Status::InvalidArgument("k exceeds the supported maximum (16384)");
  }
  out->clear();
  if (k == 0 || n == 0) return Status::OK();
  const bool keep_largest = MetricIsSimilarity(metric);

  // Boundary state carried between rounds: d_l is the worst score returned
  // so far; tied_ids are the ids returned with score exactly d_l.
  bool have_boundary = false;
  float boundary = 0.0f;
  std::unordered_set<RowId> tied_ids;

  while (out->size() < k) {
    const size_t want = std::min(kGpuKernelMaxK, k - out->size());
    ResultHeap round_heap(want, keep_largest);

    device->RunKernel([&] {
      for (size_t row = 0; row < n; ++row) {
        const float score =
            simd::ComputeFloatScore(metric, query, data + row * dim, dim);
        if (have_boundary) {
          // Skip everything already returned in earlier rounds: strictly
          // better scores, and boundary-tied ids that were recorded.
          const bool strictly_better =
              keep_largest ? score > boundary : score < boundary;
          if (strictly_better) continue;
          if (score == boundary &&
              tied_ids.count(static_cast<RowId>(row)) != 0) {
            continue;
          }
        }
        round_heap.Push(static_cast<RowId>(row), score);
      }
    });

    HitList round = round_heap.TakeSorted();
    if (round.empty()) break;  // Data exhausted before k results.

    // Update the boundary from this round's worst hit.
    const float new_boundary = round.back().score;
    if (!have_boundary || new_boundary != boundary) tied_ids.clear();
    boundary = new_boundary;
    have_boundary = true;
    for (auto it = round.rbegin();
         it != round.rend() && it->score == boundary; ++it) {
      tied_ids.insert(it->id);
    }
    // Earlier rounds may also have returned ids tied at this same score.
    for (const SearchHit& hit : *out) {
      if (hit.score == boundary) tied_ids.insert(hit.id);
    }

    out->insert(out->end(), round.begin(), round.end());
    // Results D2H: (id, score) pairs.
    device->ChargeTransfer(round.size() * (sizeof(RowId) + sizeof(float)));
  }
  return Status::OK();
}

}  // namespace gpusim
}  // namespace vectordb
