#ifndef VECTORDB_GPUSIM_SQ8H_INDEX_H_
#define VECTORDB_GPUSIM_SQ8H_INDEX_H_

#include <memory>
#include <vector>

#include "index/ivf_sq8_index.h"
#include "gpusim/gpu_device.h"

namespace vectordb {
namespace gpusim {

/// How a query batch is executed (Figure 13 sweeps all three).
enum class ExecutionMode {
  kAuto,     ///< Algorithm 1: batch >= threshold → GPU, else hybrid.
  kPureCpu,  ///< Both steps on CPU (plain IVF_SQ8).
  kPureGpu,  ///< Faiss-style: everything on GPU, per-bucket on-demand DMA.
  kHybrid,   ///< SQ8H: step 1 (probe selection) on GPU, step 2 on CPU.
};

/// SQ8H — the CPU/GPU hybrid index of Sec 3.4 (Algorithm 1), layered over
/// IVF_SQ8:
///
///  * Large batches (>= `gpu_batch_threshold`) run fully on the GPU, with
///    the needed buckets copied in *one batched multi-bucket DMA* (possible
///    because LSM segments are immutable, unlike Faiss's in-place-updated
///    buckets), utilizing the full PCIe bandwidth.
///  * Small batches execute step 1 (centroid comparison — high
///    compute-to-I/O ratio, the K centroids stay resident in device memory)
///    on the GPU, and step 2 (scattered bucket scans) on the CPU, so no
///    bucket data ever crosses the bus.
class Sq8hIndex {
 public:
  struct Options {
    size_t gpu_batch_threshold = 1000;  ///< Algorithm 1's `threshold`.
  };

  Sq8hIndex(std::unique_ptr<index::IvfSq8Index> base,
            std::shared_ptr<GpuDevice> device, const Options& options);
  Sq8hIndex(std::unique_ptr<index::IvfSq8Index> base,
            std::shared_ptr<GpuDevice> device)
      : Sq8hIndex(std::move(base), std::move(device), Options()) {}

  Status Train(const float* data, size_t n) { return base_->Train(data, n); }
  Status Add(const float* data, size_t n) { return base_->Add(data, n); }
  Status Build(const float* data, size_t n) { return base_->Build(data, n); }
  size_t Size() const { return base_->Size(); }
  const index::IvfSq8Index& base() const { return *base_; }

  struct SearchStats {
    GpuCost gpu;               ///< Simulated device cost.
    double cpu_seconds = 0.0;  ///< Measured host time of CPU legs.
    ExecutionMode mode_used = ExecutionMode::kAuto;
    size_t buckets_transferred = 0;

    double TotalSeconds() const { return gpu.TotalSeconds() + cpu_seconds; }
  };

  /// Batch search. `mode` kAuto applies Algorithm 1's batch-size test.
  Status Search(const float* queries, size_t nq,
                const index::SearchOptions& options,
                std::vector<HitList>* results, SearchStats* stats,
                ExecutionMode mode = ExecutionMode::kAuto) const;

 private:
  Status SearchPureGpu(const float* queries, size_t nq,
                       const index::SearchOptions& options,
                       std::vector<HitList>* results, SearchStats* stats,
                       bool batched_dma) const;
  Status SearchHybrid(const float* queries, size_t nq,
                      const index::SearchOptions& options,
                      std::vector<HitList>* results,
                      SearchStats* stats) const;

  std::unique_ptr<index::IvfSq8Index> base_;
  std::shared_ptr<GpuDevice> device_;
  Options options_;
};

}  // namespace gpusim
}  // namespace vectordb

#endif  // VECTORDB_GPUSIM_SQ8H_INDEX_H_
