#include "gpusim/gpu_device.h"

#include "obs/catalog.h"

namespace vectordb {
namespace gpusim {

size_t GpuDevice::memory_used() const {
  // Previously an unguarded read racing Upload/Evict on other threads —
  // surfaced by VDB_GUARDED_BY(mu_) under -Wthread-safety.
  MutexLock lock(&mu_);
  return memory_used_;
}

bool GpuDevice::IsResident(const std::string& key) {
  MutexLock lock(&mu_);
  auto it = resident_.find(key);
  if (it == resident_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second.first);
  return true;
}

Status GpuDevice::Upload(const std::string& key, size_t bytes,
                         size_t num_chunks) {
  if (bytes > options_.memory_bytes) {
    return Status::ResourceExhausted("buffer exceeds device memory: " + key);
  }
  MutexLock lock(&mu_);
  auto it = resident_.find(key);
  if (it != resident_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.first);
    return Status::OK();
  }
  if (memory_used_ + bytes > options_.memory_bytes) {
    EvictLruLocked(memory_used_ + bytes - options_.memory_bytes);
  }
  if (num_chunks == 0) num_chunks = 1;
  const double transfer =
      static_cast<double>(num_chunks) * options_.dma_latency +
      static_cast<double>(bytes) / options_.pcie_bandwidth;
  cost_.transfer_seconds += transfer;
  cost_.dma_operations += num_chunks;
  obs::Gpusim().transfer_seconds_total->Add(transfer);
  obs::Gpusim().dma_operations->Inc(num_chunks);
  lru_.push_front(key);
  resident_[key] = {lru_.begin(), bytes};
  memory_used_ += bytes;
  return Status::OK();
}

Status GpuDevice::RegisterResident(const std::string& key, size_t bytes) {
  if (bytes > options_.memory_bytes) {
    return Status::ResourceExhausted("buffer exceeds device memory: " + key);
  }
  MutexLock lock(&mu_);
  auto it = resident_.find(key);
  if (it != resident_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.first);
    return Status::OK();
  }
  if (memory_used_ + bytes > options_.memory_bytes) {
    EvictLruLocked(memory_used_ + bytes - options_.memory_bytes);
  }
  lru_.push_front(key);
  resident_[key] = {lru_.begin(), bytes};
  memory_used_ += bytes;
  return Status::OK();
}

void GpuDevice::Evict(const std::string& key) {
  MutexLock lock(&mu_);
  auto it = resident_.find(key);
  if (it == resident_.end()) return;
  memory_used_ -= it->second.second;
  lru_.erase(it->second.first);
  resident_.erase(it);
}

void GpuDevice::EvictAll() {
  MutexLock lock(&mu_);
  resident_.clear();
  lru_.clear();
  memory_used_ = 0;
}

void GpuDevice::EvictLruLocked(size_t needed) {
  size_t freed = 0;
  while (freed < needed && !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    auto it = resident_.find(victim);
    freed += it->second.second;
    memory_used_ -= it->second.second;
    resident_.erase(it);
  }
}

void GpuDevice::RunKernel(const std::function<void()>& fn) {
  Timer timer;
  fn();
  const double host_seconds = timer.ElapsedSeconds();
  MutexLock lock(&mu_);
  const double kernel_seconds =
      host_seconds / options_.kernel_speedup + options_.kernel_launch_overhead;
  cost_.kernel_seconds += kernel_seconds;
  ++cost_.kernel_launches;
  obs::Gpusim().kernel_seconds_total->Add(kernel_seconds);
  obs::Gpusim().kernel_launches->Inc();
}

void GpuDevice::ChargeTransfer(size_t bytes, size_t num_chunks) {
  MutexLock lock(&mu_);
  if (num_chunks == 0) num_chunks = 1;
  const double transfer =
      static_cast<double>(num_chunks) * options_.dma_latency +
      static_cast<double>(bytes) / options_.pcie_bandwidth;
  cost_.transfer_seconds += transfer;
  cost_.dma_operations += num_chunks;
  obs::Gpusim().transfer_seconds_total->Add(transfer);
  obs::Gpusim().dma_operations->Inc(num_chunks);
}

GpuCost GpuDevice::cost() const {
  MutexLock lock(&mu_);
  return cost_;
}

void GpuDevice::ResetCost() {
  MutexLock lock(&mu_);
  cost_ = GpuCost{};
}

}  // namespace gpusim
}  // namespace vectordb
