#include "gpusim/segment_scheduler.h"

#include <algorithm>

#include "obs/catalog.h"

namespace vectordb {
namespace gpusim {

void SegmentScheduler::AddDevice(std::shared_ptr<GpuDevice> device) {
  MutexLock lock(&mu_);
  devices_.push_back(std::move(device));
}

bool SegmentScheduler::RemoveDevice(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = std::find_if(
      devices_.begin(), devices_.end(),
      [&](const std::shared_ptr<GpuDevice>& d) { return d->name() == name; });
  if (it == devices_.end()) return false;
  devices_.erase(it);
  return true;
}

size_t SegmentScheduler::num_devices() const {
  MutexLock lock(&mu_);
  return devices_.size();
}

Result<std::vector<SegmentScheduler::TaskReport>> SegmentScheduler::RunTasks(
    const std::vector<SegmentTask>& tasks) {
  std::vector<std::shared_ptr<GpuDevice>> devices;
  {
    MutexLock lock(&mu_);
    devices = devices_;
  }
  if (devices.empty()) {
    return Status::Unavailable("no GPU devices attached");
  }

  std::vector<double> busy(devices.size(), 0.0);
  std::vector<TaskReport> reports;
  reports.reserve(tasks.size());
  for (const SegmentTask& task : tasks) {
    // Greedy least-loaded assignment.
    const size_t dev = static_cast<size_t>(
        std::min_element(busy.begin(), busy.end()) - busy.begin());
    const GpuCost cost = task(devices[dev].get());
    busy[dev] += cost.TotalSeconds();
    reports.push_back({devices[dev]->name(), cost.TotalSeconds()});
    obs::Gpusim().task_seconds->Observe(cost.TotalSeconds());
  }
  obs::Gpusim().scheduler_tasks->Inc(tasks.size());
  const double makespan = *std::max_element(busy.begin(), busy.end());
  obs::Gpusim().scheduler_makespan_seconds->Set(makespan);
  {
    MutexLock lock(&mu_);
    last_makespan_ = makespan;
  }
  return reports;
}

}  // namespace gpusim
}  // namespace vectordb
