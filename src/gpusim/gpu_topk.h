#ifndef VECTORDB_GPUSIM_GPU_TOPK_H_
#define VECTORDB_GPUSIM_GPU_TOPK_H_

#include <cstddef>

#include "common/status.h"
#include "common/types.h"
#include "gpusim/gpu_device.h"

namespace vectordb {
namespace gpusim {

/// Shared-memory limit of the (simulated) GPU top-k kernel: one round can
/// produce at most this many results, mirroring the Faiss limitation the
/// paper lifts (Sec 3.3).
constexpr size_t kGpuKernelMaxK = 1024;

/// Hard cap Milvus places on k to bound network transfers (footnote 5).
constexpr size_t kMaxSupportedK = 16384;

/// Multi-round big-k top-k (Sec 3.3): round 1 returns up to 1024 results;
/// each later round records the boundary distance d_l and the ids tied at
/// d_l, filters out everything already returned, and collects the next 1024,
/// merging until k results are accumulated. Each round is one kernel launch
/// on `device`.
Status GpuTopK(GpuDevice* device, const float* data, size_t n, size_t dim,
               const float* query, size_t k, MetricType metric, HitList* out);

}  // namespace gpusim
}  // namespace vectordb

#endif  // VECTORDB_GPUSIM_GPU_TOPK_H_
