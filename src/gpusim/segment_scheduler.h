#ifndef VECTORDB_GPUSIM_SEGMENT_SCHEDULER_H_
#define VECTORDB_GPUSIM_SEGMENT_SCHEDULER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "gpusim/gpu_device.h"

namespace vectordb {
namespace gpusim {

/// Segment-based multi-GPU scheduling (Sec 3.3): search tasks are issued at
/// segment granularity and each segment is served by exactly one device.
/// Devices can be added or removed at *runtime* — the paper's fix for Faiss
/// requiring the device count to be fixed at compile time — modelling
/// elastic cloud GPUs.
///
/// Scheduling is greedy least-loaded: the next task goes to the device with
/// the smallest accumulated simulated busy time, which yields the makespan
/// of an idealized parallel execution across devices.
class SegmentScheduler {
 public:
  /// A task receives the device it was scheduled on and returns the
  /// simulated cost of serving one segment there.
  using SegmentTask = std::function<GpuCost(GpuDevice*)>;

  struct TaskReport {
    std::string device_name;
    double simulated_seconds = 0.0;
  };

  SegmentScheduler() = default;

  /// Attach a device discovered at runtime.
  void AddDevice(std::shared_ptr<GpuDevice> device);

  /// Detach a device (e.g. elastic scale-down); pending work is unaffected,
  /// future tasks simply no longer land on it. Returns false if unknown.
  bool RemoveDevice(const std::string& name);

  size_t num_devices() const;

  /// Run all segment tasks; returns the per-task assignment and cost.
  /// Fails with Unavailable when no devices are attached.
  Result<std::vector<TaskReport>> RunTasks(
      const std::vector<SegmentTask>& tasks);

  /// Idealized parallel makespan of the last RunTasks call: the maximum
  /// simulated busy time across devices.
  double LastMakespanSeconds() const {
    // Previously an unguarded read racing RunTasks' locked write — surfaced
    // by VDB_GUARDED_BY(mu_) under -Wthread-safety.
    MutexLock lock(&mu_);
    return last_makespan_;
  }

 private:
  mutable Mutex mu_{VDB_LOCK_RANK(kGpuScheduler)};
  std::vector<std::shared_ptr<GpuDevice>> devices_ VDB_GUARDED_BY(mu_);
  double last_makespan_ VDB_GUARDED_BY(mu_) = 0.0;
};

}  // namespace gpusim
}  // namespace vectordb

#endif  // VECTORDB_GPUSIM_SEGMENT_SCHEDULER_H_
