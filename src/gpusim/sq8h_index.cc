#include "gpusim/sq8h_index.h"

#include <set>
#include <string>

#include "common/result_heap.h"
#include "common/timer.h"

namespace vectordb {
namespace gpusim {

namespace {
std::string BucketKey(size_t list_id) {
  return "bucket/" + std::to_string(list_id);
}
constexpr char kCentroidsKey[] = "centroids";
}  // namespace

Sq8hIndex::Sq8hIndex(std::unique_ptr<index::IvfSq8Index> base,
                     std::shared_ptr<GpuDevice> device,
                     const Options& options)
    : base_(std::move(base)), device_(std::move(device)), options_(options) {}

Status Sq8hIndex::Search(const float* queries, size_t nq,
                         const index::SearchOptions& options,
                         std::vector<HitList>* results, SearchStats* stats,
                         ExecutionMode mode) const {
  SearchStats local_stats;
  Status status;
  switch (mode) {
    case ExecutionMode::kAuto:
      // Algorithm 1, line 2: large batches go fully to the GPU.
      if (nq >= options_.gpu_batch_threshold) {
        local_stats.mode_used = ExecutionMode::kPureGpu;
        status = SearchPureGpu(queries, nq, options, results, &local_stats,
                               /*batched_dma=*/true);
      } else {
        local_stats.mode_used = ExecutionMode::kHybrid;
        status = SearchHybrid(queries, nq, options, results, &local_stats);
      }
      break;
    case ExecutionMode::kPureCpu: {
      local_stats.mode_used = ExecutionMode::kPureCpu;
      Timer timer;
      status = base_->Search(queries, nq, options, results);
      local_stats.cpu_seconds = timer.ElapsedSeconds();
      break;
    }
    case ExecutionMode::kPureGpu:
      // Faiss-style comparison leg: per-bucket on-demand copies.
      local_stats.mode_used = ExecutionMode::kPureGpu;
      status = SearchPureGpu(queries, nq, options, results, &local_stats,
                             /*batched_dma=*/false);
      break;
    case ExecutionMode::kHybrid:
      local_stats.mode_used = ExecutionMode::kHybrid;
      status = SearchHybrid(queries, nq, options, results, &local_stats);
      break;
  }
  if (stats != nullptr) *stats = local_stats;
  return status;
}

Status Sq8hIndex::SearchPureGpu(const float* queries, size_t nq,
                                const index::SearchOptions& options,
                                std::vector<HitList>* results,
                                SearchStats* stats, bool batched_dma) const {
  const size_t dim = base_->dim();
  results->assign(nq, HitList{});

  // Queries H2D.
  device_->ChargeTransfer(nq * dim * sizeof(float));

  // Centroids stay resident across calls.
  VDB_RETURN_NOT_OK(device_->Upload(
      kCentroidsKey, base_->nlist() * dim * sizeof(float)));

  // Step 1 on GPU: probe selection for every query.
  std::vector<std::vector<size_t>> probes(nq);
  device_->RunKernel([&] {
    for (size_t q = 0; q < nq; ++q) {
      probes[q] = base_->SelectProbes(queries + q * dim, options.nprobe);
    }
  });

  // Determine the buckets this batch needs and copy them to the device.
  std::set<size_t> needed;
  for (const auto& p : probes) needed.insert(p.begin(), p.end());

  if (batched_dma) {
    // Milvus multi-bucket copy (Sec 3.4): every non-resident bucket rides in
    // one batched DMA operation.
    size_t batch_bytes = 0;
    std::vector<size_t> missing;
    for (size_t list_id : needed) {
      if (!device_->IsResident(BucketKey(list_id))) {
        missing.push_back(list_id);
        batch_bytes += base_->list(list_id).codes.size() +
                       base_->list(list_id).ids.size() * sizeof(RowId);
      }
    }
    if (!missing.empty()) {
      // Charge one DMA op for the whole batch, then mark buckets resident
      // with zero further cost.
      device_->ChargeTransfer(batch_bytes, /*num_chunks=*/1);
      for (size_t list_id : missing) {
        const size_t bytes = base_->list(list_id).codes.size() +
                             base_->list(list_id).ids.size() * sizeof(RowId);
        VDB_RETURN_NOT_OK(device_->RegisterResident(BucketKey(list_id), bytes));
      }
      stats->buckets_transferred += missing.size();
    }
  } else {
    // Faiss-style bucket-by-bucket copy: one DMA op per bucket — this is
    // what underutilizes PCIe (measured 1–2 GB/s of 15.75 GB/s).
    for (size_t list_id : needed) {
      if (!device_->IsResident(BucketKey(list_id))) {
        const size_t bytes = base_->list(list_id).codes.size() +
                             base_->list(list_id).ids.size() * sizeof(RowId);
        VDB_RETURN_NOT_OK(
            device_->Upload(BucketKey(list_id), bytes, /*num_chunks=*/1));
        ++stats->buckets_transferred;
      }
    }
  }

  // Step 2 on GPU: scan the probed buckets for every query.
  device_->RunKernel([&] {
    for (size_t q = 0; q < nq; ++q) {
      ResultHeap heap = ResultHeap::ForMetric(options.k, base_->metric());
      base_->ScanLists(queries + q * dim, probes[q], options, &heap);
      (*results)[q] = heap.TakeSorted();
    }
  });

  // Results D2H.
  device_->ChargeTransfer(nq * options.k * (sizeof(RowId) + sizeof(float)));
  stats->gpu += device_->cost();
  device_->ResetCost();
  return Status::OK();
}

Status Sq8hIndex::SearchHybrid(const float* queries, size_t nq,
                               const index::SearchOptions& options,
                               std::vector<HitList>* results,
                               SearchStats* stats) const {
  const size_t dim = base_->dim();
  results->assign(nq, HitList{});

  // Queries H2D (tiny).
  device_->ChargeTransfer(nq * dim * sizeof(float));
  VDB_RETURN_NOT_OK(device_->Upload(
      kCentroidsKey, base_->nlist() * dim * sizeof(float)));

  // Step 1 of SQ8 on GPU (Algorithm 1, line 5): all queries compare against
  // the same resident K centroids — high compute-to-I/O ratio.
  std::vector<std::vector<size_t>> probes(nq);
  device_->RunKernel([&] {
    for (size_t q = 0; q < nq; ++q) {
      probes[q] = base_->SelectProbes(queries + q * dim, options.nprobe);
    }
  });
  // Probe lists D2H.
  device_->ChargeTransfer(nq * options.nprobe * sizeof(uint64_t));
  stats->gpu += device_->cost();
  device_->ResetCost();

  // Step 2 on CPU (line 6): scattered bucket scans; no bucket crosses PCIe.
  Timer timer;
  for (size_t q = 0; q < nq; ++q) {
    ResultHeap heap = ResultHeap::ForMetric(options.k, base_->metric());
    base_->ScanLists(queries + q * dim, probes[q], options, &heap);
    (*results)[q] = heap.TakeSorted();
  }
  stats->cpu_seconds += timer.ElapsedSeconds();
  return Status::OK();
}

}  // namespace gpusim
}  // namespace vectordb
