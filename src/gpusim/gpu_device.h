#ifndef VECTORDB_GPUSIM_GPU_DEVICE_H_
#define VECTORDB_GPUSIM_GPU_DEVICE_H_

#include <cstddef>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/status.h"
#include "common/timer.h"

namespace vectordb {
namespace gpusim {

/// Accumulated simulated cost of work dispatched to a GPU device.
struct GpuCost {
  double transfer_seconds = 0.0;  ///< PCIe DMA time.
  double kernel_seconds = 0.0;    ///< On-device compute time.
  size_t dma_operations = 0;      ///< Individual copy operations issued.
  size_t kernel_launches = 0;

  double TotalSeconds() const { return transfer_seconds + kernel_seconds; }

  GpuCost& operator+=(const GpuCost& other) {
    transfer_seconds += other.transfer_seconds;
    kernel_seconds += other.kernel_seconds;
    dma_operations += other.dma_operations;
    kernel_launches += other.kernel_launches;
    return *this;
  }
};

/// Software model of a GPU co-processor (substitution for physical CUDA
/// devices, see DESIGN.md). Work dispatched to the device executes on the
/// host CPU for correctness, while a cost model charges simulated time:
///
///  * DMA transfers cost `dma_latency` per copy operation plus
///    bytes / pcie_bandwidth — so many small per-bucket copies underutilize
///    the bus exactly as the paper observes for Faiss (measured 1–2 GB/s
///    out of a 15.75 GB/s PCIe 3.0 x16 link), while one batched multi-bucket
///    copy approaches peak bandwidth (the SQ8H fix, Sec 3.4).
///  * Kernels cost (measured host CPU seconds) / `kernel_speedup`, plus a
///    fixed launch overhead.
///
/// Device memory is a byte-budgeted LRU buffer cache keyed by string; a
/// resident buffer costs nothing to reuse.
class GpuDevice {
 public:
  struct Options {
    size_t memory_bytes = size_t{2} << 30;   ///< Device global memory.
    double pcie_bandwidth = 15.75e9;          ///< Peak bytes/second.
    double dma_latency = 100e-6;              ///< Seconds per copy op.
    double kernel_speedup = 8.0;              ///< Vs one host core.
    double kernel_launch_overhead = 20e-6;    ///< Seconds per launch.
  };

  GpuDevice(std::string name, const Options& options)
      : name_(std::move(name)), options_(options) {}
  explicit GpuDevice(std::string name) : GpuDevice(std::move(name), Options()) {}

  const std::string& name() const { return name_; }
  const Options& options() const { return options_; }
  size_t memory_used() const;

  /// True if `key` is resident in device memory (refreshes LRU position).
  bool IsResident(const std::string& key);

  /// Ensure `key` (`bytes` long, copied in `num_chunks` separate DMA
  /// operations) is resident, charging transfer cost and evicting LRU
  /// buffers as needed. A buffer larger than device memory is rejected.
  Status Upload(const std::string& key, size_t bytes, size_t num_chunks = 1);

  /// Mark `key` resident without charging transfer cost — used when the
  /// bytes already rode in a batched multi-buffer DMA charged separately.
  Status RegisterResident(const std::string& key, size_t bytes);

  /// Drop a buffer (no cost).
  void Evict(const std::string& key);
  void EvictAll();

  /// Execute `fn` as a device kernel: runs on the host, charges simulated
  /// kernel time = wall time / kernel_speedup + launch overhead.
  void RunKernel(const std::function<void()>& fn);

  /// Charge a transfer without tracking residency (e.g. results D2H).
  void ChargeTransfer(size_t bytes, size_t num_chunks = 1);

  GpuCost cost() const;
  void ResetCost();

 private:
  void EvictLruLocked(size_t needed) VDB_REQUIRES(mu_);

  std::string name_;
  Options options_;

  mutable Mutex mu_{VDB_LOCK_RANK(kGpuDevice)};
  GpuCost cost_ VDB_GUARDED_BY(mu_);
  size_t memory_used_ VDB_GUARDED_BY(mu_) = 0;
  /// LRU list, most recent at front; map key → (list iterator, bytes).
  std::list<std::string> lru_ VDB_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::pair<std::list<std::string>::iterator,
                                            size_t>>
      resident_ VDB_GUARDED_BY(mu_);
};

}  // namespace gpusim
}  // namespace vectordb

#endif  // VECTORDB_GPUSIM_GPU_DEVICE_H_
